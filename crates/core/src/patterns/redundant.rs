//! The one-pass redundant-allocation algorithm (Def. 3.3, Fig. 3).
//!
//! For each data object the first and last GPU APIs that access it are
//! extracted from the memory access trace. The resulting `First`/`Last`
//! events are sorted by timestamp (`Last` after `First` on ties) and
//! traversed from the tail to the head while tracking per-object status:
//!
//! * `Initial` — not visited yet;
//! * `InUse` — its `Last` event has been visited, but not its `First`;
//! * `Done` — both visited;
//! * `Reused` — selected as a reuse source (no longer reusable by others,
//!   but may itself still reuse another object).
//!
//! When an object turns `Done`, the nearest event to its left whose object
//! is still `Initial` and of compatible size identifies the reuse partner:
//! that object's lifetime ended before this object's began.

use super::{ObjectView, PatternEvidence, PatternFinding, TraceView};
use crate::object::ObjectId;
use std::collections::HashMap;

/// Returns `true` if two object sizes are within `pct` percent of each
/// other, measured against the *reused* object's size (Def. 3.3's "does not
/// exceed X% in size" with the paper's default X = 10).
pub fn sizes_compatible(candidate: u64, reused: u64, pct: f64) -> bool {
    if reused == 0 {
        return candidate == 0;
    }
    let diff = candidate.abs_diff(reused) as f64;
    diff <= reused as f64 * (pct / 100.0)
}

/// Visit progression during the tail→head traversal. The paper's four
/// statuses decompose into this progression plus a `reused` flag, because a
/// `Reused` object "can still reuse others" — being selected as a reuse
/// source must not stop the object's own `Done` transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Progress {
    /// Paper's `Initial`: no event visited yet.
    NotVisited,
    /// Paper's `In Use`: the last-access event has been visited.
    LastSeen,
    /// Paper's `Done`: both events visited.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    First,
    Last,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    ts: u64,
    kind: EventKind,
    obj: usize, // index into `candidates`
}

/// Detects redundant allocations across the whole trace with the one-pass
/// algorithm of Fig. 3. `size_pct` is the size-compatibility window
/// (paper default 10 %).
pub fn detect_redundant_allocations(trace: &TraceView, size_pct: f64) -> Vec<PatternFinding> {
    detect_redundant_allocations_cancellable(trace, size_pct, &crate::governor::CancelToken::new())
        .expect("fresh token is never cancelled")
}

/// Like [`detect_redundant_allocations`], polling `cancel` during the
/// tail→head traversal; returns `None` (dropping partial findings) once
/// cancellation is observed.
pub fn detect_redundant_allocations_cancellable(
    trace: &TraceView,
    size_pct: f64,
    cancel: &crate::governor::CancelToken,
) -> Option<Vec<PatternFinding>> {
    // ① Extract first/last accessing APIs per object. Objects never
    // accessed cannot participate (they are *unused allocations* instead).
    let candidates: Vec<&ObjectView> = trace
        .objects
        .iter()
        .filter(|o| o.analyzable && !o.accesses.is_empty())
        .collect();
    if candidates.len() < 2 {
        return Some(Vec::new());
    }

    // ② Build and sort the event list: by timestamp, with `Last` after
    // `First` on equal timestamps (Fig. 3 step ②), then by object index for
    // determinism.
    let mut events = Vec::with_capacity(candidates.len() * 2);
    for (i, obj) in candidates.iter().enumerate() {
        // `candidates` filters out access-free objects, but stay defensive:
        // a missing endpoint just drops the object from pairing.
        let (Some(first), Some(last)) = (obj.first_access(), obj.last_access()) else {
            continue;
        };
        let (first, last) = (first.api.ts, last.api.ts);
        events.push(Event {
            ts: first,
            kind: EventKind::First,
            obj: i,
        });
        events.push(Event {
            ts: last,
            kind: EventKind::Last,
            obj: i,
        });
    }
    events.sort_by_key(|e| (e.ts, matches!(e.kind, EventKind::Last), e.obj));

    // ③④ Traverse tail → head, updating statuses and pairing on `Done`.
    let mut progress: HashMap<usize, Progress> = HashMap::new();
    let mut reused = vec![false; candidates.len()];
    let mut findings = Vec::new();
    for pos in (0..events.len()).rev() {
        if cancel.is_cancelled() {
            return None;
        }
        let ev = events[pos];
        let st = progress.entry(ev.obj).or_insert(Progress::NotVisited);
        match ev.kind {
            EventKind::Last => {
                if *st == Progress::NotVisited {
                    *st = Progress::LastSeen;
                }
            }
            EventKind::First => {
                if *st == Progress::LastSeen {
                    *st = Progress::Done;
                    // Select the closest event to the left belonging to an
                    // object that is still Initial (not visited, not yet
                    // reused) and size-compatible.
                    let me = ev.obj;
                    let my_size = candidates[me].size;
                    let partner = events[..pos].iter().rev().find_map(|left| {
                        let partner_progress = progress
                            .get(&left.obj)
                            .copied()
                            .unwrap_or(Progress::NotVisited);
                        if left.obj != me
                            && partner_progress == Progress::NotVisited
                            && !reused[left.obj]
                            && sizes_compatible(my_size, candidates[left.obj].size, size_pct)
                        {
                            Some(left.obj)
                        } else {
                            None
                        }
                    });
                    if let Some(p) = partner {
                        reused[p] = true;
                        let reused = candidates[p];
                        let size_diff_pct = if reused.size == 0 {
                            0.0
                        } else {
                            (my_size.abs_diff(reused.size) as f64 / reused.size as f64) * 100.0
                        };
                        findings.push(PatternFinding {
                            object: candidates[me].id,
                            evidence: PatternEvidence::RedundantAllocation {
                                reuse_of: reused.id,
                                reuse_label: reused.label.clone(),
                                size_diff_pct,
                            },
                        });
                    }
                }
            }
        }
    }
    findings.sort_by_key(|f| f.object);
    Some(findings)
}

/// Convenience: the set of (consumer, reuse source) pairs.
pub fn reuse_pairs(findings: &[PatternFinding]) -> Vec<(ObjectId, ObjectId)> {
    findings
        .iter()
        .filter_map(|f| match &f.evidence {
            PatternEvidence::RedundantAllocation { reuse_of, .. } => Some((f.object, *reuse_of)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{AccessVia, ApiRef, ObjectAccess};

    fn mk_trace(n: usize) -> TraceView {
        TraceView::synthetic(n)
    }

    fn obj(trace: &mut TraceView, id: u64, size: u64, first: usize, last: usize) {
        let mk = |idx: usize| ObjectAccess {
            api: ApiRef {
                idx,
                ts: idx as u64,
                name: format!("API({idx})"),
            },
            read: true,
            write: true,
            via: AccessVia::Kernel,
        };
        let accesses = if first == last {
            vec![mk(first)]
        } else {
            vec![mk(first), mk(last)]
        };
        trace.objects.push(ObjectView {
            id: ObjectId(id),
            label: format!("o{id}"),
            size,
            alloc: None,
            alloc_anchor: 0,
            free: None,
            free_anchor: None,
            accesses,
            analyzable: true,
        });
    }

    #[test]
    fn basic_sequential_reuse() {
        // o0 lives [1,2]; o1 lives [4,5] — o1 can reuse o0.
        let mut tv = mk_trace(6);
        obj(&mut tv, 0, 1000, 1, 2);
        obj(&mut tv, 1, 1000, 4, 5);
        let f = detect_redundant_allocations(&tv, 10.0);
        assert_eq!(reuse_pairs(&f), vec![(ObjectId(1), ObjectId(0))]);
    }

    #[test]
    fn overlapping_lifetimes_do_not_pair() {
        let mut tv = mk_trace(6);
        obj(&mut tv, 0, 1000, 1, 4);
        obj(&mut tv, 1, 1000, 3, 5);
        assert!(detect_redundant_allocations(&tv, 10.0).is_empty());
    }

    #[test]
    fn size_window_enforced() {
        let mut tv = mk_trace(6);
        obj(&mut tv, 0, 1000, 1, 2);
        obj(&mut tv, 1, 2000, 4, 5); // 100% larger: incompatible at 10%
        assert!(detect_redundant_allocations(&tv, 10.0).is_empty());
        // …but compatible with a generous window.
        assert_eq!(detect_redundant_allocations(&tv, 100.0).len(), 1);
    }

    #[test]
    fn size_compatibility_is_symmetric_enough() {
        assert!(sizes_compatible(1000, 1000, 10.0));
        assert!(sizes_compatible(1050, 1000, 10.0));
        assert!(sizes_compatible(950, 1000, 10.0));
        assert!(!sizes_compatible(1200, 1000, 10.0));
        assert!(sizes_compatible(0, 0, 10.0));
        assert!(!sizes_compatible(1, 0, 10.0));
    }

    #[test]
    fn reused_object_cannot_be_reused_twice() {
        // o0 dies early; o1 and o2 both start after. Only one may reuse o0.
        let mut tv = mk_trace(10);
        obj(&mut tv, 0, 1000, 1, 2);
        obj(&mut tv, 1, 1000, 4, 5);
        obj(&mut tv, 2, 1000, 7, 8);
        let f = detect_redundant_allocations(&tv, 10.0);
        let pairs = reuse_pairs(&f);
        // o1 reuses o0; o2 then reuses o1 (whose lifetime ended at 5).
        assert!(pairs.contains(&(ObjectId(1), ObjectId(0))));
        assert!(pairs.contains(&(ObjectId(2), ObjectId(1))));
        assert_eq!(pairs.len(), 2);
    }

    /// The Figure 3 scenario: four objects; when O4's first API is visited,
    /// O4 turns Done and reuses O1 (the closest Initial object to the left).
    #[test]
    fn figure3_example() {
        let mut tv = mk_trace(12);
        // O1: first 1, last 5 (its last coincides with O3's first at ts 5;
        // Last sorts after First).
        obj(&mut tv, 1, 1000, 1, 5);
        // O2: first 2, last 3.
        obj(&mut tv, 2, 1000, 2, 3);
        // O3: first 5, last 9.
        obj(&mut tv, 3, 1000, 5, 9);
        // O4: first 6, last 8.
        obj(&mut tv, 4, 1000, 6, 8);
        let f = detect_redundant_allocations(&tv, 10.0);
        let pairs = reuse_pairs(&f);
        assert!(
            pairs.contains(&(ObjectId(4), ObjectId(1))),
            "O4 reuses O1: {pairs:?}"
        );
        // O3 starts exactly when O1 ends (ts 5) — with Last-after-First
        // ordering O1 is NOT dead before O3's first API, so O3 must not
        // reuse O1. O3 may reuse O2 (dead at ts 3).
        assert!(pairs.contains(&(ObjectId(3), ObjectId(2))), "{pairs:?}");
        assert!(!pairs.contains(&(ObjectId(3), ObjectId(1))));
    }

    #[test]
    fn single_object_no_findings() {
        let mut tv = mk_trace(3);
        obj(&mut tv, 0, 100, 0, 1);
        assert!(detect_redundant_allocations(&tv, 10.0).is_empty());
    }

    #[test]
    fn unaccessed_objects_are_excluded() {
        let mut tv = mk_trace(6);
        obj(&mut tv, 0, 1000, 1, 2);
        tv.objects.push(ObjectView {
            id: ObjectId(9),
            label: "never_touched".to_owned(),
            size: 1000,
            alloc: None,
            alloc_anchor: 0,
            free: None,
            free_anchor: None,
            accesses: vec![],
            analyzable: true,
        });
        assert!(detect_redundant_allocations(&tv, 10.0).is_empty());
    }
}
