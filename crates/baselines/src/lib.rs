//! # drgpum-baselines: the state-of-the-art tools of the paper's Table 5
//!
//! Lite reimplementations of the two comparators the paper evaluates
//! against (Sec. 7.8):
//!
//! * [`ValueExpertLite`] — a value-aware profiler in the spirit of
//!   ValueExpert (ASPLOS 2022): detects value-level redundancies and lets a
//!   user infer *unused allocations*, but none of DrGPUM's other
//!   value-agnostic patterns;
//! * [`MemcheckLite`] — an allocation checker in the spirit of NVIDIA
//!   Compute Sanitizer's `memcheck`: detects *memory leaks* (host-side
//!   `cudaMalloc` only) but no memory inefficiencies.
//!
//! Both register with the same Sanitizer-style instrumentation API the
//! DrGPUM collector uses, so the Table 5 comparison runs all three tools
//! over identical event streams.

#![warn(missing_docs)]

pub mod memcheck;
pub mod value_expert;

pub use memcheck::{LeakRecord, MemcheckLite};
pub use value_expert::{ValueExpertLite, ValueFinding};
