//! Memcheck-lite: an allocation checker in the spirit of NVIDIA Compute
//! Sanitizer's `memcheck` substrate, DrGPUM's vendor-tool comparator
//! (Sec. 7.8, Table 5).
//!
//! Compute Sanitizer is highly specialized for memory *errors* — leaks,
//! out-of-bounds and misaligned accesses — not memory *inefficiencies*. Of
//! DrGPUM's ten patterns it can only report the memory leak (and only for
//! host-side `cudaMalloc`, matching the Table 5 footnote: the simulator has
//! no device-side `malloc`).

use drgpum_core::PatternKind;
use gpu_sim::sanitizer::SanitizerHooks;
use gpu_sim::{ApiEvent, ApiKind, CallPath, DevicePtr};
use std::collections::{HashMap, HashSet};

/// One leak record, in compute-sanitizer style.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakRecord {
    /// Leaked allocation base.
    pub ptr: DevicePtr,
    /// Leaked bytes.
    pub bytes: u64,
    /// Object label.
    pub label: String,
    /// Call path of the leaking allocation.
    pub call_path: CallPath,
}

/// The memcheck-lite tool: tracks `cudaMalloc`/`cudaFree` pairing.
#[derive(Debug, Default)]
pub struct MemcheckLite {
    live: HashMap<DevicePtr, LeakRecord>,
    invalid_frees: u64,
    total_allocs: u64,
}

impl MemcheckLite {
    /// Creates an idle tool.
    pub fn new() -> Self {
        MemcheckLite::default()
    }

    /// Allocations still live — reported as leaks at process exit, like
    /// `compute-sanitizer --leak-check full`.
    pub fn leaks(&self) -> Vec<&LeakRecord> {
        let mut v: Vec<&LeakRecord> = self.live.values().collect();
        v.sort_by_key(|l| l.ptr);
        v
    }

    /// Total leaked bytes.
    pub fn leaked_bytes(&self) -> u64 {
        self.live.values().map(|l| l.bytes).sum()
    }

    /// Number of `cudaMalloc` calls observed.
    pub fn total_allocations(&self) -> u64 {
        self.total_allocs
    }

    /// Which of DrGPUM's ten patterns this tool can identify — Compute
    /// Sanitizer's column of Table 5.
    pub fn detectable_patterns(&self) -> HashSet<PatternKind> {
        let mut set = HashSet::new();
        if !self.live.is_empty() {
            set.insert(PatternKind::MemoryLeak);
        }
        set
    }
}

impl SanitizerHooks for MemcheckLite {
    // Collapsing the inner `if` into a match guard would hide the removal
    // side effect inside the guard; keep it explicit.
    #[allow(clippy::collapsible_match)]
    fn on_api(&mut self, event: &ApiEvent) {
        match &event.kind {
            ApiKind::Malloc { ptr, size, label } => {
                self.total_allocs += 1;
                self.live.insert(
                    *ptr,
                    LeakRecord {
                        ptr: *ptr,
                        bytes: *size,
                        label: label.clone(),
                        call_path: event.call_path.clone(),
                    },
                );
            }
            ApiKind::Free { ptr, .. } => {
                if self.live.remove(ptr).is_none() {
                    self.invalid_frees += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceContext;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn reports_leaks_at_exit() {
        let tool = Arc::new(Mutex::new(MemcheckLite::new()));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(tool.clone());
        let a = ctx.malloc(100, "freed").unwrap();
        let _b = ctx.malloc(200, "leaked").unwrap();
        ctx.free(a).unwrap();
        let t = tool.lock();
        let leaks = t.leaks();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].label, "leaked");
        assert_eq!(t.leaked_bytes(), 200);
        assert!(t.detectable_patterns().contains(&PatternKind::MemoryLeak));
    }

    #[test]
    fn clean_program_reports_nothing() {
        let tool = Arc::new(Mutex::new(MemcheckLite::new()));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(tool.clone());
        // An early allocation + dead write + overallocation, all invisible
        // to a leak checker.
        let p = ctx.malloc(1 << 20, "big").unwrap();
        let other = ctx.malloc(64, "other").unwrap();
        ctx.memset(other, 0, 64).unwrap();
        ctx.memset(p, 0, 1).unwrap();
        ctx.memset(p, 1, 1).unwrap();
        ctx.free(p).unwrap();
        ctx.free(other).unwrap();
        let t = tool.lock();
        assert!(t.leaks().is_empty());
        assert!(t.detectable_patterns().is_empty());
        assert_eq!(t.total_allocations(), 2);
    }
}
