//! ValueExpert-lite: a value-aware GPU memory profiler in the spirit of
//! ValueExpert (ASPLOS 2022), DrGPUM's closest research comparator
//! (Sec. 7.8, Table 5).
//!
//! ValueExpert identifies *value-related* inefficiencies — e.g. consecutive
//! writes of the same value to the same memory location — by inspecting the
//! values flowing through GPU memory. It is orthogonal to DrGPUM: of the
//! ten value-agnostic patterns, the only one a user can recover from its
//! output is the *unused allocation* (objects that never appear in the
//! access profile), which the paper marks "Yes*" in Table 5.

use drgpum_core::PatternKind;
use gpu_sim::kernel::KernelCounters;
use gpu_sim::sanitizer::{KernelInfo, PatchMode, SanitizerHooks, TouchedObject};
use gpu_sim::{ApiEvent, ApiKind, DevicePtr};
use std::collections::{HashMap, HashSet};

/// A value-level finding (ValueExpert's own vocabulary, not DrGPUM's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueFinding {
    /// The same scalar value was stored to the same object by two
    /// consecutive writes (e.g. `cudaMemset(p, 0)` twice in a row).
    RedundantValueWrite {
        /// Object label.
        label: String,
        /// The repeated fill value.
        value: u8,
    },
    /// An object was allocated but never appeared in the access profile —
    /// the one DrGPUM pattern "users can reason about with ease" from
    /// ValueExpert output (Table 5 footnote).
    NeverAccessed {
        /// Object label.
        label: String,
    },
}

#[derive(Debug, Default, Clone)]
struct ObjState {
    label: String,
    accessed: bool,
    last_set_value: Option<u8>,
}

/// The ValueExpert-lite tool. Register with
/// [`gpu_sim::Sanitizer::register`], run the program, then call
/// [`ValueExpertLite::findings`] / [`ValueExpertLite::detectable_patterns`].
#[derive(Debug, Default)]
pub struct ValueExpertLite {
    objects: HashMap<DevicePtr, ObjState>,
    retired: Vec<ObjState>,
    findings: Vec<ValueFinding>,
}

impl ValueExpertLite {
    /// Creates an idle tool.
    pub fn new() -> Self {
        ValueExpertLite::default()
    }

    fn mark_accessed(&mut self, ptr: DevicePtr) {
        // Writes/reads through copies land at object bases in this tool's
        // coarse model; kernel touches arrive via TouchedObject bases.
        if let Some(st) = self.objects.get_mut(&ptr) {
            st.accessed = true;
            st.last_set_value = None;
        }
    }

    /// Value-level findings gathered so far.
    pub fn findings(&self) -> &[ValueFinding] {
        &self.findings
    }

    /// Finalizes the profile: emits `NeverAccessed` findings for objects
    /// that never showed up in the access stream.
    pub fn finish(&mut self) {
        let mut all: Vec<ObjState> = self.retired.clone();
        all.extend(self.objects.values().cloned());
        for st in all {
            if !st.accessed && st.label != "memory_pool_slab" {
                self.findings
                    .push(ValueFinding::NeverAccessed { label: st.label });
            }
        }
    }

    /// Which of DrGPUM's ten patterns this tool's output can identify —
    /// ValueExpert's column of Table 5.
    pub fn detectable_patterns(&self) -> HashSet<PatternKind> {
        let mut set = HashSet::new();
        if self
            .findings
            .iter()
            .any(|f| matches!(f, ValueFinding::NeverAccessed { .. }))
        {
            set.insert(PatternKind::UnusedAllocation);
        }
        set
    }
}

impl SanitizerHooks for ValueExpertLite {
    fn on_api(&mut self, event: &ApiEvent) {
        match &event.kind {
            ApiKind::Malloc { ptr, label, .. } => {
                self.objects.insert(
                    *ptr,
                    ObjState {
                        label: label.clone(),
                        accessed: false,
                        last_set_value: None,
                    },
                );
            }
            ApiKind::Free { ptr, .. } => {
                if let Some(st) = self.objects.remove(ptr) {
                    self.retired.push(st);
                }
            }
            ApiKind::Memset { dst, value, .. } => {
                if let Some(st) = self.objects.get_mut(dst) {
                    st.accessed = true;
                    if st.last_set_value == Some(*value) {
                        self.findings.push(ValueFinding::RedundantValueWrite {
                            label: st.label.clone(),
                            value: *value,
                        });
                    }
                    st.last_set_value = Some(*value);
                }
            }
            ApiKind::MemcpyH2D { dst, .. } => self.mark_accessed(*dst),
            ApiKind::MemcpyD2H { src, .. } => self.mark_accessed(*src),
            ApiKind::MemcpyD2D { dst, src, .. } => {
                self.mark_accessed(*dst);
                self.mark_accessed(*src);
            }
            _ => {}
        }
    }

    fn on_kernel_begin(&mut self, _info: &KernelInfo) -> PatchMode {
        // ValueExpert needs per-access values; hit flags suffice for the
        // access profile this lite version keeps.
        PatchMode::HitFlags
    }

    fn on_kernel_end(
        &mut self,
        _info: &KernelInfo,
        touched: &[TouchedObject],
        _counters: &KernelCounters,
    ) {
        for t in touched {
            self.mark_accessed(t.base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceContext;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn detects_never_accessed_objects() {
        let tool = Arc::new(Mutex::new(ValueExpertLite::new()));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(tool.clone());
        let used = ctx.malloc(64, "used").unwrap();
        let _unused = ctx.malloc(64, "unused").unwrap();
        ctx.memset(used, 0, 64).unwrap();
        let mut t = tool.lock();
        t.finish();
        assert!(t
            .findings()
            .iter()
            .any(|f| matches!(f, ValueFinding::NeverAccessed { label } if label == "unused")));
        assert!(t
            .detectable_patterns()
            .contains(&PatternKind::UnusedAllocation));
    }

    #[test]
    fn detects_redundant_value_writes() {
        let tool = Arc::new(Mutex::new(ValueExpertLite::new()));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(tool.clone());
        let p = ctx.malloc(64, "p").unwrap();
        ctx.memset(p, 7, 64).unwrap();
        ctx.memset(p, 7, 64).unwrap();
        let t = tool.lock();
        assert!(t
            .findings()
            .iter()
            .any(|f| matches!(f, ValueFinding::RedundantValueWrite { value: 7, .. })));
    }

    #[test]
    fn cannot_see_value_agnostic_patterns() {
        // A textbook early allocation + late deallocation + dead write via
        // differing values: ValueExpert-lite reports nothing DrGPUM-like.
        let tool = Arc::new(Mutex::new(ValueExpertLite::new()));
        let mut ctx = DeviceContext::new_default();
        ctx.sanitizer_mut().register(tool.clone());
        let early = ctx.malloc(64, "early").unwrap();
        let other = ctx.malloc(64, "other").unwrap();
        ctx.memset(other, 1, 64).unwrap();
        ctx.memset(early, 2, 64).unwrap(); // EA on `early`
        ctx.memset(early, 3, 64).unwrap(); // dead write (different values!)
        ctx.free(other).unwrap();
        ctx.free(early).unwrap();
        let mut t = tool.lock();
        t.finish();
        assert!(t.findings().is_empty());
        assert!(t.detectable_patterns().is_empty());
    }
}
