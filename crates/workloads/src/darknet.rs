//! Darknet: YOLO-style convolutional network inference.
//!
//! Reproduces the memory behaviour DrGPUM found in Darknet (Sec. 7.2):
//!
//! * `l.weights_gpu` — **dead write**: `cuda_make_array` initializes the
//!   weights from the host at layer-construction time, and
//!   `cuda_push_array` initializes them *again* before the forward pass
//!   with no intervening read;
//! * `l.output_gpu` — **early allocation**: outputs are allocated during
//!   network parsing but first used in the forward pass;
//! * `l.delta_gpu` — **unused allocation**: gradient buffers are never
//!   touched during inference;
//! * the global `workspace` is never freed — a **memory leak**;
//! * per-layer outputs are only ever read by the next layer, so they admit
//!   **redundant allocation** (ping-pong reuse) and sit **temporarily
//!   idle**; everything else is **late-deallocated**.
//!
//! The optimized variant removes the first weight upload, drops the delta
//! buffers, ping-pongs two activation buffers, and frees the workspace —
//! the paper reports an 83 % peak-memory reduction.

use crate::common::{checksum, finish, in_frame, synth_data, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Number of convolutional layers.
pub const LAYERS: usize = 10;
/// Elements per activation map.
pub const ACT_LEN: u64 = 16 * 1024;
/// Elements per layer's weights.
pub const W_LEN: u64 = 2 * 1024;
/// Elements of the shared im2col workspace.
pub const WS_LEN: u64 = 8 * 1024;

fn conv_kernel(
    ctx: &mut DeviceContext,
    layer: usize,
    input: DevicePtr,
    weights: DevicePtr,
    workspace: DevicePtr,
    output: DevicePtr,
) -> Result<()> {
    ctx.launch(
        &format!("forward_convolutional_layer_{layer}"),
        // Threads i and i + WS_LEN (different blocks) round-trip through
        // the same workspace slot — non-atomic cross-block RMW.
        LaunchConfig::cover(ACT_LEN, 128)?.serialized(),
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < ACT_LEN {
                let x = t.load_f32(input + i * 4);
                let w = t.load_f32(weights + (i % W_LEN) * 4);
                // im2col staging into the shared workspace.
                let ws = workspace + (i % WS_LEN) * 4;
                t.store_f32(ws, x * w);
                let staged = t.load_f32(ws);
                let acc = staged + x * 0.5;
                // Leaky-ReLU-ish activation keeps values bounded.
                let y = if acc > 0.0 { acc } else { acc * 0.1 };
                t.store_f32(output + i * 4, y);
                t.flop(5);
            }
        },
    )?;
    Ok(())
}

fn host_conv(input: &[f32], weights: &[f32]) -> Vec<f32> {
    input
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let w = weights[i % W_LEN as usize];
            let acc = x * w + x * 0.5;
            if acc > 0.0 {
                acc
            } else {
                acc * 0.1
            }
        })
        .collect()
}

/// Runs the Darknet inference workload.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if the final activation disagrees with the host reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let act = ACT_LEN as usize;
    let image = synth_data(act, 81);
    let layer_weights: Vec<Vec<f32>> = (0..LAYERS)
        .map(|l| synth_data(W_LEN as usize, 82 + l as u32))
        .collect();
    let mut reference = image.clone();
    for w in &layer_weights {
        reference = host_conv(&reference, w);
    }
    let expected = checksum(&reference);

    let act_bytes = ACT_LEN * 4;
    let w_bytes = W_LEN * 4;
    let ws_bytes = WS_LEN * 4;

    let out_host = in_frame(ctx, "main", "detector.c", 620, |ctx| -> Result<Vec<f32>> {
        match variant {
            Variant::Unoptimized => {
                // --- parse_network_cfg: build every layer eagerly. -------
                let mut weights = Vec::new();
                let mut outputs = Vec::new();
                let mut deltas = Vec::new();
                in_frame(ctx, "parse_network_cfg", "parser.c", 1189, |ctx| {
                    for (l, w_host) in layer_weights.iter().enumerate() {
                        let w = in_frame(
                            ctx,
                            "make_convolutional_layer",
                            "convolutional_layer.c",
                            473,
                            |ctx| {
                                let w = ctx.malloc(w_bytes, format!("l{l}.weights_gpu"))?;
                                // cuda_make_array uploads l.weights immediately —
                                // the write that turns out to be dead.
                                ctx.h2d_f32(w, w_host)?;
                                Ok::<_, gpu_sim::SimError>(w)
                            },
                        )?;
                        weights.push(w);
                        outputs.push(ctx.malloc(act_bytes, format!("l{l}.output_gpu"))?);
                        deltas.push(ctx.malloc(act_bytes, format!("l{l}.delta_gpu"))?);
                    }
                    Ok::<_, gpu_sim::SimError>(())
                })?;
                let workspace = ctx.malloc(ws_bytes, "net.workspace")?;
                // --- load_weights: push every layer's weights again. -----
                in_frame(ctx, "load_weights", "parser.c", 1310, |ctx| {
                    for (w, w_host) in weights.iter().zip(&layer_weights) {
                        // cuda_push_array: the second initialization.
                        ctx.h2d_f32(*w, w_host)?;
                    }
                    Ok::<_, gpu_sim::SimError>(())
                })?;
                // --- inference. ------------------------------------------
                let input = ctx.malloc(act_bytes, "net.input_gpu")?;
                ctx.h2d_f32(input, &image)?;
                let mut cur = input;
                for l in 0..LAYERS {
                    conv_kernel(ctx, l, cur, weights[l], workspace, outputs[l])?;
                    cur = outputs[l];
                }
                let mut out = vec![0.0f32; act];
                ctx.d2h_f32(&mut out, cur)?;
                // Free everything except the workspace (the leak).
                ctx.free(input)?;
                for l in 0..LAYERS {
                    ctx.free(weights[l])?;
                    ctx.free(outputs[l])?;
                    ctx.free(deltas[l])?;
                }
                Ok(out)
            }
            Variant::Optimized => {
                // Weights uploaded once, no deltas, ping-pong activations.
                let mut weights = Vec::new();
                for (l, w_host) in layer_weights.iter().enumerate() {
                    let w = ctx.malloc(w_bytes, format!("l{l}.weights_gpu"))?;
                    ctx.h2d_f32(w, w_host)?;
                    weights.push(w);
                }
                let workspace = ctx.malloc(ws_bytes, "net.workspace")?;
                let ping = ctx.malloc(act_bytes, "act_ping")?;
                let pong = ctx.malloc(act_bytes, "act_pong")?;
                ctx.h2d_f32(ping, &image)?;
                let (mut cur, mut next) = (ping, pong);
                for (l, w) in weights.iter().enumerate() {
                    conv_kernel(ctx, l, cur, *w, workspace, next)?;
                    std::mem::swap(&mut cur, &mut next);
                }
                let mut out = vec![0.0f32; act];
                ctx.d2h_f32(&mut out, cur)?;
                for w in weights {
                    ctx.free(w)?;
                }
                ctx.free(workspace)?;
                ctx.free(ping)?;
                ctx.free(pong)?;
                Ok(out)
            }
        }
    })?;

    let got = checksum(&out_host);
    crate::common::assert_checksums_match(got, expected);
    assert_eq!(out_host, reference, "inference output must match reference");
    Ok(finish(ctx, got, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_drops_83_percent() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 83.0).abs() < 2.0,
            "expected ~83% reduction, got {reduction:.1}%"
        );
    }
}
