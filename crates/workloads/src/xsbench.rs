//! XSBench: Monte Carlo neutron-transport macroscopic cross-section lookup
//! (the paper's Sec. 7.5 case study).
//!
//! `GSD.index_grid` is sized for the full unionized energy grid, but each
//! GPU thread only touches its own chunk and most chunks stay untouched:
//! the paper measures 5 % of elements accessed — the **overallocation**
//! pattern, with near-zero fragmentation because the touched chunks are
//! clustered. Shrinking the grid to the touched portion reclaims 63 % of
//! peak memory. `GSD.concs` is never freed — a **memory leak** (the paper's
//! 1-line fix pairs it with a free).

use crate::common::{finish, in_frame, synth_data, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Bytes of the (overallocated) unionized index grid.
pub const INDEX_GRID_BYTES: u64 = 97_280;
/// Bytes of one index-grid chunk (one per thread).
pub const CHUNK_BYTES: u64 = 256;
/// Number of lookup threads (each touches exactly one chunk).
pub const LOOKUPS: u64 = 19;
/// Elements of the nuclide grid.
pub const NUCLIDE_LEN: u64 = 8 * 1024; // 32 KiB
/// Elements of the concentrations array.
pub const CONCS_LEN: u64 = 4 * 1024; // 16 KiB (divides the nuclide walk evenly)

fn xs_lookup_kernel(
    ctx: &mut DeviceContext,
    nuclide: DevicePtr,
    concs: DevicePtr,
    index_grid: DevicePtr,
) -> Result<()> {
    let chunk_elems = CHUNK_BYTES / 4;
    ctx.launch(
        "xs_lookup_kernel_baseline",
        LaunchConfig::cover(LOOKUPS, 32)?,
        StreamId::DEFAULT,
        move |t| {
            let tid = t.global_x();
            if tid < LOOKUPS {
                let mut macro_xs = 0.0f32;
                // Each thread walks the whole nuclide/concentration data in
                // a strided fashion (full coverage across the grid)…
                let mut i = tid;
                while i < NUCLIDE_LEN {
                    let n = t.load_f32(nuclide + i * 4);
                    let c = t.load_f32(concs + (i % CONCS_LEN) * 4);
                    macro_xs += n * c;
                    t.flop(2);
                    i += LOOKUPS;
                }
                // …but touches only its own chunk of the giant index grid.
                let chunk = index_grid + tid * CHUNK_BYTES;
                for e in 0..chunk_elems {
                    t.store_f32(chunk + e * 4, macro_xs + e as f32);
                }
            }
        },
    )?;
    Ok(())
}

fn host_reference(nuclide: &[f32], concs: &[f32]) -> Vec<f32> {
    let chunk_elems = (CHUNK_BYTES / 4) as usize;
    let mut out = vec![0.0f32; LOOKUPS as usize * chunk_elems];
    for tid in 0..LOOKUPS as usize {
        let mut macro_xs = 0.0f32;
        let mut i = tid;
        while i < NUCLIDE_LEN as usize {
            macro_xs += nuclide[i] * concs[i % CONCS_LEN as usize];
            i += LOOKUPS as usize;
        }
        for e in 0..chunk_elems {
            out[tid * chunk_elems + e] = macro_xs + e as f32;
        }
    }
    out
}

/// Runs the XSBench workload.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if the lookup results disagree with the host reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let nuclide_host = synth_data(NUCLIDE_LEN as usize, 101);
    let concs_host = synth_data(CONCS_LEN as usize, 102);
    let reference = host_reference(&nuclide_host, &concs_host);
    let used_bytes = LOOKUPS * CHUNK_BYTES;

    let results = in_frame(ctx, "main", "Main.cu", 53, |ctx| -> Result<Vec<f32>> {
        // grid_init_do_not_profile: build the simulation data.
        let (index_grid, concs, nuclide) =
            in_frame(ctx, "grid_init", "Simulation.cu", 281, |ctx| {
                let grid_bytes = if variant.is_optimized() {
                    // The fix: size the grid by the actual lookup count.
                    used_bytes
                } else {
                    INDEX_GRID_BYTES
                };
                Ok::<_, gpu_sim::SimError>((
                    ctx.malloc(grid_bytes, "GSD.index_grid")?,
                    ctx.malloc(CONCS_LEN * 4, "GSD.concs")?,
                    ctx.malloc(NUCLIDE_LEN * 4, "GSD.nuclide_grid")?,
                ))
            })?;
        ctx.h2d_f32(concs, &concs_host)?;
        ctx.h2d_f32(nuclide, &nuclide_host)?;
        xs_lookup_kernel(ctx, nuclide, concs, index_grid)?;
        // Free each buffer right after its last use (no late deallocation
        // in XSBench's Table 1 row).
        ctx.free(nuclide)?;
        let mut out = vec![0.0f32; (used_bytes / 4) as usize];
        ctx.d2h_f32(&mut out, index_grid)?;
        ctx.free(index_grid)?;
        if variant.is_optimized() {
            // The paper's memory-leak fix.
            ctx.free(concs)?;
        }
        Ok(out)
    })?;

    assert_eq!(results, reference, "lookup results must match reference");
    let sum: f64 = results.iter().map(|&v| f64::from(v)).sum();
    Ok(finish(ctx, sum, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_drops_63_percent() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 63.0).abs() < 2.0,
            "expected ~63% reduction, got {reduction:.1}%"
        );
    }

    #[test]
    fn five_percent_of_the_grid_is_touched() {
        let used = LOOKUPS * CHUNK_BYTES;
        let pct = 100.0 * used as f64 / INDEX_GRID_BYTES as f64;
        assert!((pct - 5.0).abs() < 0.1, "touched fraction is {pct:.2}%");
    }
}
