//! PolyBench/GramSchmidt: classical Gram-Schmidt orthonormalization.
//!
//! Per iteration `k`, three kernels run: `gramschmidt_kernel1` computes the
//! column norm into `R[k,k]`, `gramschmidt_kernel2` normalizes the column
//! into `Q`, and `gramschmidt_kernel3` computes the row slice `R[k, k+1..n]`
//! and updates the remaining columns of `A`.
//!
//! DrGPUM's findings (Sec. 7.3):
//!
//! * `R_gpu` matches the **structured access** pattern at
//!   `gramschmidt_kernel3` — each instance touches one disjoint row slice
//!   (Fig. 8). The optimized variant allocates a single row buffer and
//!   reuses it across instances, copying each finished row to the host
//!   (33 % peak reduction).
//! * `R_gpu` matches **non-uniform access frequency** — row slices shrink
//!   with `k`, so per-slice access totals are highly skewed (the paper
//!   measures 58 % variance). The optimized variant stages the hot `Q`
//!   column in shared memory and keeps the freshly-computed `R[k,j]` in a
//!   register, yielding the paper's ~1.3–1.4× speedup.

use crate::common::{checksum, finish, in_frame, synth_data, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Matrix dimension (n×n).
pub const N: u32 = 24;

/// Bytes per row of `R_gpu` — the element granularity at which the paper
/// discusses `R_gpu`'s access-frequency variance (per slice, Sec. 7.3).
pub const ROW_BYTES: u32 = N * 4;

fn at(base: DevicePtr, i: u64, j: u64) -> DevicePtr {
    base + (i * u64::from(N) + j) * 4
}

/// `gramschmidt_kernel1`: `R[k,k] = ||A[:,k]||`.
fn kernel1(ctx: &mut DeviceContext, a: DevicePtr, r_kk: DevicePtr, k: u64) -> Result<()> {
    let m = u64::from(N);
    ctx.launch(
        "gramschmidt_kernel1",
        LaunchConfig::cover(1, 1)?,
        StreamId::DEFAULT,
        move |t| {
            let mut nrm = 0.0f32;
            for i in 0..m {
                let v = t.load_f32(at(a, i, k));
                nrm += v * v;
                t.flop(2);
            }
            t.store_f32(r_kk, nrm.sqrt());
            t.flop(8);
        },
    )?;
    Ok(())
}

/// `gramschmidt_kernel2`: `Q[:,k] = A[:,k] / R[k,k]`.
fn kernel2(
    ctx: &mut DeviceContext,
    a: DevicePtr,
    q: DevicePtr,
    r_kk: DevicePtr,
    k: u64,
) -> Result<()> {
    let m = u64::from(N);
    ctx.launch(
        "gramschmidt_kernel2",
        LaunchConfig::cover(m, 8)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < m {
                let nrm = t.load_f32(r_kk);
                let v = t.load_f32(at(a, i, k));
                t.store_f32(at(q, i, k), v / nrm);
                t.flop(1);
            }
        },
    )?;
    Ok(())
}

/// `gramschmidt_kernel3`: for each `j > k`, compute `R[k,j] = Q[:,k]·A[:,j]`
/// and update `A[:,j] -= Q[:,k] * R[k,j]`.
///
/// `r_row(j)` maps column `j` to the device address holding `R[k,j]` —
/// either inside the full `R` matrix (unoptimized) or inside the reused row
/// buffer (optimized). When `optimized` is set, the hot `Q` column is staged
/// in shared memory once per block and `R[k,j]` stays in a register.
fn kernel3(
    ctx: &mut DeviceContext,
    a: DevicePtr,
    q: DevicePtr,
    r_elem: impl Fn(u64) -> DevicePtr + Copy + Sync + 'static,
    k: u64,
    optimized: bool,
) -> Result<()> {
    let m = u64::from(N);
    let cols = m - k - 1;
    if cols == 0 {
        return Ok(());
    }
    let block: u32 = 8;
    let cfg = LaunchConfig::cover(cols, block)?.with_shared_mem(N * 4);
    ctx.launch("gramschmidt_kernel3", cfg, StreamId::DEFAULT, move |t| {
        let lane = t.global_x();
        if optimized && t.thread_idx.x == 0 {
            // First thread of each block stages Q[:,k] into shared memory.
            for i in 0..m {
                let v = t.load_f32(at(q, i, k));
                t.shared_store_f32(i as u32 * 4, v);
            }
        }
        if lane < cols {
            let j = k + 1 + lane;
            let mut acc = 0.0f32;
            for i in 0..m {
                let qv = if optimized {
                    t.shared_load_f32(i as u32 * 4)
                } else {
                    t.load_f32(at(q, i, k))
                };
                let av = t.load_f32(at(a, i, j));
                acc += qv * av;
                t.flop(2);
            }
            t.store_f32(r_elem(j), acc);
            for i in 0..m {
                let rv = if optimized {
                    acc // kept in a register
                } else {
                    t.load_f32(r_elem(j))
                };
                let qv = if optimized {
                    t.shared_load_f32(i as u32 * 4)
                } else {
                    t.load_f32(at(q, i, k))
                };
                let av = t.load_f32(at(a, i, j));
                t.store_f32(at(a, i, j), av - qv * rv);
                t.flop(2);
            }
        }
    })?;
    Ok(())
}

/// Runs GramSchmidt; see the module docs for the two variants.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if the produced `Q` is not orthonormal (validation).
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let n = N as usize;
    let m = u64::from(N);
    let s = m * m * 4;
    let host_a = synth_data(n * n, 41);

    let q_host = in_frame(
        ctx,
        "main",
        "gramschmidt.cu",
        140,
        |ctx| -> Result<Vec<f32>> {
            let a = ctx.malloc(s, "A_gpu")?;
            let q = ctx.malloc(s, "Q_gpu")?;
            ctx.h2d_f32(a, &host_a)?;
            ctx.memset(q, 0, s)?;
            match variant {
                Variant::Unoptimized => {
                    // One big R for the whole run (the structured-access victim).
                    let r = ctx.malloc(s, "R_gpu")?;
                    for k in 0..m {
                        kernel1(ctx, a, at(r, k, k), k)?;
                        kernel2(ctx, a, q, at(r, k, k), k)?;
                        kernel3(ctx, a, q, move |j| at(r, k, j), k, false)?;
                    }
                    let mut out = vec![0.0f32; n * n];
                    ctx.d2h_f32(&mut out, q)?;
                    ctx.free(r)?;
                    ctx.free(q)?;
                    ctx.free(a)?;
                    Ok(out)
                }
                Variant::Optimized => {
                    // One row-sized slice, reused across every kernel3 instance.
                    let row_bytes = u64::from(ROW_BYTES);
                    let r_row = ctx.malloc(row_bytes, "R_row")?;
                    let mut r_host = vec![0.0f32; n * n];
                    for k in 0..m {
                        kernel1(ctx, a, r_row + k * 4, k)?;
                        kernel2(ctx, a, q, r_row + k * 4, k)?;
                        kernel3(ctx, a, q, move |j| r_row + j * 4, k, true)?;
                        // Persist the finished row on the host.
                        let mut row = vec![0.0f32; n];
                        ctx.d2h_f32(&mut row, r_row)?;
                        r_host[k as usize * n..(k as usize + 1) * n].copy_from_slice(&row);
                    }
                    let mut out = vec![0.0f32; n * n];
                    ctx.d2h_f32(&mut out, q)?;
                    ctx.free(r_row)?;
                    ctx.free(q)?;
                    ctx.free(a)?;
                    Ok(out)
                }
            }
        },
    )?;

    // Validation: Q must be orthonormal.
    for c1 in 0..n {
        for c2 in c1..n {
            let dot: f64 = (0..n)
                .map(|i| f64::from(q_host[i * n + c1]) * f64::from(q_host[i * n + c2]))
                .sum();
            let expect = if c1 == c2 { 1.0 } else { 0.0 };
            assert!(
                (dot - expect).abs() < 2e-2,
                "Q not orthonormal: col {c1}·col {c2} = {dot}"
            );
        }
    }
    Ok(finish(ctx, checksum(&q_host), None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_drops_a_third() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 33.0).abs() < 2.0,
            "expected ~33% reduction, got {reduction:.1}%"
        );
    }

    #[test]
    fn shared_memory_optimization_is_faster() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        let speedup = u.elapsed.as_ns() as f64 / o.elapsed.as_ns() as f64;
        assert!(
            speedup > 1.1,
            "optimized variant must be faster, got {speedup:.2}x"
        );
    }
}
