//! PolyBench/3MM: three chained matrix multiplications,
//! `G = (A×B) × (C×D)`.
//!
//! The unoptimized variant allocates all seven matrices up front and frees
//! them at exit. DrGPUM's findings (Table 4): late deallocations on
//! `A_gpu`/`C_gpu`, redundant allocations, early allocations on
//! `E_gpu`/`F_gpu`, and temporary idleness (`E` sits idle on the GPU while
//! the second multiplication runs). The optimized variant frees inputs
//! eagerly, reuses dead buffers, and offloads `E` to the host during the
//! second multiplication — cutting peak memory from 7 to 3 matrices (the
//! paper reports 57 %).

use crate::common::{checksum, finish, in_frame, synth_data, RunOutcome, Variant};
use crate::polybench::host_matmul;
use crate::polybench::two_mm::device_matmul;
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, Result};

/// Matrix dimension (n×n).
pub const N: u32 = 24;

/// Runs 3MM; see the module docs for the two variants.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let n = N as usize;
    let host_a = synth_data(n * n, 31);
    let host_b = synth_data(n * n, 32);
    let host_c = synth_data(n * n, 33);
    let host_d = synth_data(n * n, 34);
    let e_ref = host_matmul(&host_a, &host_b, n);
    let f_ref = host_matmul(&host_c, &host_d, n);
    let g_ref = host_matmul(&e_ref, &f_ref, n);
    let expected = checksum(&g_ref);
    let s = u64::from(N) * u64::from(N) * 4;

    let result = in_frame(ctx, "main", "3mm.cu", 180, |ctx| -> Result<Vec<f32>> {
        match variant {
            Variant::Unoptimized => {
                let ptrs = in_frame(ctx, "init_arrays", "3mm.cu", 40, |ctx| {
                    Ok::<_, gpu_sim::SimError>((
                        ctx.malloc(s, "A_gpu")?,
                        ctx.malloc(s, "B_gpu")?,
                        ctx.malloc(s, "C_gpu")?,
                        ctx.malloc(s, "D_gpu")?,
                        ctx.malloc(s, "E_gpu")?,
                        ctx.malloc(s, "F_gpu")?,
                        ctx.malloc(s, "G_gpu")?,
                    ))
                })?;
                let (a, b, c, d, e, f, g) = ptrs;
                ctx.h2d_f32(b, &host_b)?;
                ctx.h2d_f32(a, &host_a)?;
                device_matmul(ctx, "mm3_kernel1", a, b, e, N)?;
                ctx.h2d_f32(d, &host_d)?;
                ctx.h2d_f32(c, &host_c)?;
                device_matmul(ctx, "mm3_kernel2", c, d, f, N)?;
                device_matmul(ctx, "mm3_kernel3", e, f, g, N)?;
                let mut out = vec![0.0f32; n * n];
                ctx.d2h_f32(&mut out, g)?;
                for ptr in [a, b, c, d, e, f, g] {
                    ctx.free(ptr)?;
                }
                Ok(out)
            }
            Variant::Optimized => {
                // Phase 1: E = A × B with only three matrices live.
                let a = ctx.malloc(s, "A_gpu")?;
                let b = ctx.malloc(s, "B_gpu")?;
                ctx.h2d_f32(b, &host_b)?;
                ctx.h2d_f32(a, &host_a)?;
                let e = ctx.malloc(s, "E_gpu")?;
                device_matmul(ctx, "mm3_kernel1", a, b, e, N)?;
                ctx.free(a)?;
                ctx.free(b)?;
                // Offload E to the host while the second multiply runs
                // (the temporary-idleness fix).
                let mut e_host = vec![0.0f32; n * n];
                ctx.d2h_f32(&mut e_host, e)?;
                ctx.free(e)?;
                // Phase 2: F = C × D; C and D reuse the freed slots.
                let c = ctx.malloc(s, "C_gpu")?;
                let d = ctx.malloc(s, "D_gpu")?;
                ctx.h2d_f32(d, &host_d)?;
                ctx.h2d_f32(c, &host_c)?;
                let f = ctx.malloc(s, "F_gpu")?;
                device_matmul(ctx, "mm3_kernel2", c, d, f, N)?;
                ctx.free(c)?;
                ctx.free(d)?;
                // Phase 3: bring E back and compute G.
                let e2 = ctx.malloc(s, "E_gpu")?;
                ctx.h2d_f32(e2, &e_host)?;
                let g = ctx.malloc(s, "G_gpu")?;
                device_matmul(ctx, "mm3_kernel3", e2, f, g, N)?;
                let mut out = vec![0.0f32; n * n];
                ctx.d2h_f32(&mut out, g)?;
                for ptr in [e2, f, g] {
                    ctx.free(ptr)?;
                }
                Ok(out)
            }
        }
    })?;

    let got = checksum(&result);
    crate::common::assert_checksums_match(got, expected);
    assert_eq!(result, g_ref, "3MM result must match host reference");
    Ok(finish(ctx, got, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_drops_57_percent() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 57.0).abs() < 1.5,
            "expected ~57% reduction, got {reduction:.1}%"
        );
    }
}
