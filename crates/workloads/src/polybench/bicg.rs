//! PolyBench/BICG: the BiCG sub-kernel of the biconjugate gradient solver,
//! on a lower-triangular system matrix:
//!
//! ```text
//! s[j] = Σ_{i ≥ j} r[i] * A[i,j]        (bicg_kernel1)
//! q[i] = Σ_{j ≤ i} A[i,j] * p[j]        (bicg_kernel2)
//! ```
//!
//! The unoptimized kernels accumulate directly into global memory
//! (`s[j] += …` per step), so each element of `s_gpu`/`q_gpu` is
//! read-modified-written once per accumulation step — and the triangular
//! structure makes the per-element counts highly skewed, which is DrGPUM's
//! **non-uniform access frequency** finding on `s_gpu` and `q_gpu`
//! (Sec. 7.3). The optimized variant accumulates in a register and writes
//! each element once, eliminating the hot global traffic — the paper
//! reports 2.06× (RTX 3090) and 2.48× (A100) speedups.

use crate::common::{checksum, finish, in_frame, synth_data, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// System dimension (n×n triangular matrix).
pub const N: u32 = 64;
/// Solver iterations (the BiCG sub-kernels run once per iteration).
pub const ITERS: u32 = 30;

fn at(base: DevicePtr, i: u64, j: u64) -> DevicePtr {
    base + (i * u64::from(N) + j) * 4
}

fn vec_at(base: DevicePtr, i: u64) -> DevicePtr {
    base + i * 4
}

fn kernel1(
    ctx: &mut DeviceContext,
    a: DevicePtr,
    r: DevicePtr,
    s: DevicePtr,
    optimized: bool,
) -> Result<()> {
    let n = u64::from(N);
    ctx.launch(
        "bicg_kernel1",
        LaunchConfig::cover(n, 16)?,
        StreamId::DEFAULT,
        move |t| {
            let j = t.global_x();
            if j < n {
                if optimized {
                    let mut acc = 0.0f32;
                    for i in j..n {
                        let rv = t.load_f32(vec_at(r, i));
                        let av = t.load_f32(at(a, i, j));
                        acc += rv * av;
                        t.flop(2);
                    }
                    let sv = t.load_f32(vec_at(s, j));
                    t.store_f32(vec_at(s, j), sv + acc);
                } else {
                    for i in j..n {
                        let rv = t.load_f32(vec_at(r, i));
                        let av = t.load_f32(at(a, i, j));
                        let sv = t.load_f32(vec_at(s, j));
                        t.store_f32(vec_at(s, j), sv + rv * av);
                        t.flop(2);
                    }
                }
            }
        },
    )?;
    Ok(())
}

fn kernel2(
    ctx: &mut DeviceContext,
    a: DevicePtr,
    p: DevicePtr,
    q: DevicePtr,
    optimized: bool,
) -> Result<()> {
    let n = u64::from(N);
    ctx.launch(
        "bicg_kernel2",
        LaunchConfig::cover(n, 16)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < n {
                if optimized {
                    let mut acc = 0.0f32;
                    for j in 0..=i {
                        let pv = t.load_f32(vec_at(p, j));
                        let av = t.load_f32(at(a, i, j));
                        acc += pv * av;
                        t.flop(2);
                    }
                    let qv = t.load_f32(vec_at(q, i));
                    t.store_f32(vec_at(q, i), qv + acc);
                } else {
                    for j in 0..=i {
                        let pv = t.load_f32(vec_at(p, j));
                        let av = t.load_f32(at(a, i, j));
                        let qv = t.load_f32(vec_at(q, i));
                        t.store_f32(vec_at(q, i), qv + pv * av);
                        t.flop(2);
                    }
                }
            }
        },
    )?;
    Ok(())
}

fn normalize_kernel(
    ctx: &mut DeviceContext,
    s: DevicePtr,
    q: DevicePtr,
    t_out: DevicePtr,
) -> Result<()> {
    let n = u64::from(N);
    ctx.launch(
        "bicg_normalize",
        LaunchConfig::cover(n, 16)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < n {
                let sv = t.load_f32(vec_at(s, i));
                let qv = t.load_f32(vec_at(q, i));
                t.store_f32(vec_at(t_out, i), sv + qv);
                t.flop(1);
            }
        },
    )?;
    Ok(())
}

/// Runs BICG; see the module docs for the two variants.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if the device results disagree with the host reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let n = N as usize;
    let opt = variant.is_optimized();
    // Lower-triangular system matrix.
    let mut host_a = synth_data(n * n, 51);
    for i in 0..n {
        for j in i + 1..n {
            host_a[i * n + j] = 0.0;
        }
    }
    let host_r = synth_data(n, 52);
    let host_p = synth_data(n, 53);
    // The sub-kernels run ITERS times without resetting, so results
    // accumulate linearly.
    let mut s_ref = vec![0.0f32; n];
    let mut q_ref = vec![0.0f32; n];
    for j in 0..n {
        for i in j..n {
            s_ref[j] += host_r[i] * host_a[i * n + j];
        }
        s_ref[j] *= ITERS as f32;
    }
    for i in 0..n {
        for j in 0..=i {
            q_ref[i] += host_a[i * n + j] * host_p[j];
        }
        q_ref[i] *= ITERS as f32;
    }

    let s_bytes = u64::from(N) * u64::from(N) * 4;
    let v_bytes = u64::from(N) * 4;
    let (s_out, q_out) = in_frame(ctx, "main", "bicg.cu", 120, |ctx| {
        // Eager batch allocation, as PolyBench does (EA on the later-used
        // objects, RA between same-size vectors with disjoint lifetimes).
        let a = ctx.malloc(s_bytes, "A_gpu")?;
        let r = ctx.malloc(v_bytes, "r_gpu")?;
        let s = ctx.malloc(v_bytes, "s_gpu")?;
        let p = ctx.malloc(v_bytes, "p_gpu")?;
        let q = ctx.malloc(v_bytes, "q_gpu")?;
        ctx.h2d_f32(a, &host_a)?;
        ctx.h2d_f32(r, &host_r)?;
        ctx.memset(s, 0, v_bytes)?;
        ctx.h2d_f32(p, &host_p)?;
        ctx.memset(q, 0, v_bytes)?;
        for _iter in 0..ITERS {
            kernel1(ctx, a, r, s, opt)?;
            kernel2(ctx, a, p, q, opt)?;
        }
        let mut s_out = vec![0.0f32; n];
        ctx.d2h_f32(&mut s_out, s)?;
        let mut q_out = vec![0.0f32; n];
        ctx.d2h_f32(&mut q_out, q)?;
        // Final residual combine: `t_gpu` is the same size as the long-dead
        // `r_gpu` — DrGPUM's redundant-allocation finding.
        let t = ctx.malloc(v_bytes, "t_gpu")?;
        normalize_kernel(ctx, s, q, t)?;
        let mut t_out = vec![0.0f32; n];
        ctx.d2h_f32(&mut t_out, t)?;
        for (i, &v) in t_out.iter().enumerate() {
            assert!((v - (s_out[i] + q_out[i])).abs() < 1e-3, "t[{i}] mismatch");
        }
        for ptr in [a, r, s, p, q, t] {
            ctx.free(ptr)?;
        }
        Ok::<_, gpu_sim::SimError>((s_out, q_out))
    })?;

    for j in 0..n {
        assert!(
            (s_out[j] - s_ref[j]).abs() < 1e-2,
            "s[{j}] mismatch: {} vs {}",
            s_out[j],
            s_ref[j]
        );
        assert!(
            (q_out[j] - q_ref[j]).abs() < 1e-2,
            "q[{j}] mismatch: {} vs {}",
            q_out[j],
            q_ref[j]
        );
    }
    let sum = checksum(&s_out) + checksum(&q_out);
    Ok(finish(ctx, sum, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
    }

    #[test]
    fn register_accumulation_approaches_2x() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        let speedup = u.elapsed.as_ns() as f64 / o.elapsed.as_ns() as f64;
        assert!(
            speedup > 1.5,
            "expected ~2x speedup from register accumulation, got {speedup:.2}x"
        );
    }
}
