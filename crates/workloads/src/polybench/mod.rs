//! PolyBench/GPU workloads: 2MM, 3MM, GramSchmidt, BICG.

pub mod bicg;
pub mod gramschmidt;
pub mod three_mm;
pub mod two_mm;

/// Host-side reference matrix multiply: `C = A × B` for `n×n` row-major
/// matrices, shared by the 2MM/3MM validations.
pub fn host_matmul(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_matmul_identity() {
        let n = 3;
        let mut eye = vec![0.0f32; 9];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let a: Vec<f32> = (0..9).map(|i| i as f32).collect();
        assert_eq!(host_matmul(&a, &eye, n), a);
        assert_eq!(host_matmul(&eye, &a, n), a);
    }
}
