//! PolyBench/2MM: two chained matrix multiplications, `D = (A×B)×C`.
//!
//! The unoptimized variant mirrors PolyBench/GPU's structure: every array is
//! allocated up front and freed at the very end. DrGPUM's findings (Table 4):
//! `A_gpu` late deallocation, `B_gpu` redundant allocation (reusable for
//! `D_gpu`), `D_gpu` early allocation. The optimized variant defers `D`'s
//! space by reusing `B`'s buffer, frees `A` right after its last kernel, and
//! allocates `C` just before use — cutting peak memory from 5 to 3 matrices
//! (the paper reports 40 %).

use crate::common::{checksum, finish, in_frame, RunOutcome, Variant};
use crate::polybench::host_matmul;
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Matrix dimension (n×n).
pub const N: u32 = 24;

fn matrix_bytes() -> u64 {
    u64::from(N) * u64::from(N) * 4
}

/// Launches the n×n matmul kernel `c = a × b`.
pub(crate) fn device_matmul(
    ctx: &mut DeviceContext,
    name: &str,
    a: DevicePtr,
    b: DevicePtr,
    c: DevicePtr,
    n: u32,
) -> Result<()> {
    let total = u64::from(n) * u64::from(n);
    let n64 = u64::from(n);
    ctx.launch(
        name,
        LaunchConfig::cover(total, 64)?,
        StreamId::DEFAULT,
        move |t| {
            let idx = t.global_x();
            if idx < total {
                let i = idx / n64;
                let j = idx % n64;
                let mut acc = 0.0f32;
                for k in 0..n64 {
                    let av = t.load_f32(a + (i * n64 + k) * 4);
                    let bv = t.load_f32(b + (k * n64 + j) * 4);
                    acc += av * bv;
                    t.flop(2);
                }
                t.store_f32(c + idx * 4, acc);
            }
        },
    )?;
    Ok(())
}

/// Runs 2MM; see the module docs for the two variants.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let n = N as usize;
    let host_a = crate::common::synth_data(n * n, 21);
    let host_b = crate::common::synth_data(n * n, 22);
    let host_c = crate::common::synth_data(n * n, 23);
    let reference = host_matmul(&host_matmul(&host_a, &host_b, n), &host_c, n);
    let expected = checksum(&reference);
    let s = matrix_bytes();

    let d_result = in_frame(ctx, "main", "2mm.cu", 164, |ctx| -> Result<Vec<f32>> {
        match variant {
            Variant::Unoptimized => {
                // Eager batch allocation (the PolyBench habit).
                let (a, b, c, tmp, d) = in_frame(ctx, "init_arrays", "2mm.cu", 35, |ctx| {
                    Ok::<_, gpu_sim::SimError>((
                        ctx.malloc(s, "A_gpu")?,
                        ctx.malloc(s, "B_gpu")?,
                        ctx.malloc(s, "C_gpu")?,
                        ctx.malloc(s, "tmp_gpu")?,
                        ctx.malloc(s, "D_gpu")?,
                    ))
                })?;
                ctx.h2d_f32(b, &host_b)?;
                ctx.h2d_f32(a, &host_a)?;
                in_frame(ctx, "mm2_cpu", "2mm.cu", 90, |ctx| {
                    device_matmul(ctx, "mm2_kernel1", a, b, tmp, N)
                })?;
                ctx.h2d_f32(c, &host_c)?;
                in_frame(ctx, "mm2_cpu", "2mm.cu", 98, |ctx| {
                    device_matmul(ctx, "mm2_kernel2", tmp, c, d, N)
                })?;
                let mut out = vec![0.0f32; n * n];
                ctx.d2h_f32(&mut out, d)?;
                // Lazy batch deallocation at program end.
                for ptr in [a, b, c, tmp, d] {
                    ctx.free(ptr)?;
                }
                Ok(out)
            }
            Variant::Optimized => {
                let a = ctx.malloc(s, "A_gpu")?;
                let b = ctx.malloc(s, "B_gpu")?;
                ctx.h2d_f32(b, &host_b)?;
                ctx.h2d_f32(a, &host_a)?;
                let tmp = ctx.malloc(s, "tmp_gpu")?;
                in_frame(ctx, "mm2_cpu", "2mm.cu", 90, |ctx| {
                    device_matmul(ctx, "mm2_kernel1", a, b, tmp, N)
                })?;
                // A's last use is behind us: free it now (LD fix).
                ctx.free(a)?;
                // B is dead too; its buffer is reused as D (RA fix), so D
                // never gets its own allocation (EA fix: no early D at all).
                let d = b;
                let c = ctx.malloc(s, "C_gpu")?;
                ctx.h2d_f32(c, &host_c)?;
                in_frame(ctx, "mm2_cpu", "2mm.cu", 98, |ctx| {
                    device_matmul(ctx, "mm2_kernel2", tmp, c, d, N)
                })?;
                let mut out = vec![0.0f32; n * n];
                ctx.d2h_f32(&mut out, d)?;
                for ptr in [tmp, c, b] {
                    ctx.free(ptr)?;
                }
                Ok(out)
            }
        }
    })?;

    let got = checksum(&d_result);
    crate::common::assert_checksums_match(got, expected);
    assert_eq!(d_result, reference, "2MM result must match host reference");
    Ok(finish(ctx, got, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_agree_with_reference() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
    }

    #[test]
    fn optimization_cuts_peak_by_forty_percent() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 40.0).abs() < 1.0,
            "expected ~40% peak reduction, got {reduction:.1}% \
             (unopt {} / opt {})",
            u.peak_bytes,
            o.peak_bytes
        );
    }
}
