//! PyTorch: ResNet-style convolutional forward pass through a caching
//! memory pool (the paper's Sec. 5.4 / 7.4 case study).
//!
//! Tensors are carved out of a pre-allocated pool slab with custom
//! allocator APIs that the Sanitizer cannot see; DrGPUM observes them
//! through its pool-profiling interface. The reproduced inefficiency is the
//! paper's PyTorch patch (upstreamed as PR 79183): `slow_conv2d_forward`
//! always allocates the `columns` im2col buffer, even for 1×1 convolutions
//! whose `requires_columns` is false — an **unused allocation**.
//! Conditionally skipping it trims the convolutional layers' peak pool
//! memory by ~3 %. Weight tensors created at model-build time are **early
//! allocations**, retained activations are **late-deallocated** and sit
//! **temporarily idle** after their consumer layer, and the per-layer
//! `columns` buffers admit **redundant allocation** (equal sizes, disjoint
//! lifetimes).

use crate::common::{checksum, finish, in_frame, synth_data, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::pool::CachingPool;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Number of convolutional layers.
pub const LAYERS: usize = 4;
/// Elements per activation tensor.
pub const ACT_LEN: u64 = 16 * 1024; // 64 KiB
/// Elements per weight tensor.
pub const W_LEN: u64 = 4 * 1024; // 16 KiB
/// Elements per `columns` (im2col) tensor.
pub const COL_LEN: u64 = 3 * 1024; // 12 KiB
/// Elements per batch-norm running-stats tensor (allocated at model build,
/// first touched during that layer's forward pass — an early allocation).
pub const BN_LEN: u64 = 256; // 1 KiB
/// Bytes reserved by the caching allocator's slab.
pub const SLAB_BYTES: u64 = 1 << 20;

/// Which layers are 3×3 convolutions (and therefore really use `columns`).
const USES_COLUMNS: [bool; LAYERS] = [true, true, false, false];

fn conv_kernel(
    ctx: &mut DeviceContext,
    layer: usize,
    x: DevicePtr,
    w: DevicePtr,
    columns: Option<DevicePtr>,
    bn_stats: DevicePtr,
    y: DevicePtr,
) -> Result<()> {
    ctx.launch(
        &format!("slow_conv2d_forward_{layer}"),
        // Threads i and i + COL_LEN (different blocks) round-trip through
        // the same im2col slot, and all blocks collide on the bn-stats
        // words — non-atomic cross-block read-modify-write.
        LaunchConfig::cover(ACT_LEN, 128)?.serialized(),
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < ACT_LEN {
                let xv = t.load_f32(x + i * 4);
                let wv = t.load_f32(w + (i % W_LEN) * 4);
                let v = if let Some(cols) = columns {
                    // 3×3 path: stage through the im2col buffer.
                    let c = cols + (i % COL_LEN) * 4;
                    t.store_f32(c, xv * wv);
                    t.load_f32(c) + 0.25
                } else {
                    // 1×1 path: straight GEMM on the input.
                    xv * wv + 0.25
                };
                t.store_f32(y + i * 4, v.max(0.0));
                // Update the layer's running batch-norm statistics.
                t.store_f32(bn_stats + (i % BN_LEN) * 4, v);
                t.flop(4);
            }
        },
    )?;
    Ok(())
}

fn host_conv(x: &[f32], w: &[f32]) -> Vec<f32> {
    x.iter()
        .enumerate()
        .map(|(i, &xv)| (xv * w[i % W_LEN as usize] + 0.25).max(0.0))
        .collect()
}

/// Runs the PyTorch workload. If `cfg.pool_observer` is set, it is
/// registered with the caching pool before any tensor is created.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if the final activation disagrees with the host reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, cfg: &RunConfig) -> Result<RunOutcome> {
    let image = synth_data(ACT_LEN as usize, 121);
    let weights: Vec<Vec<f32>> = (0..LAYERS)
        .map(|l| synth_data(W_LEN as usize, 122 + l as u32))
        .collect();
    let mut reference = image.clone();
    for w in &weights {
        reference = host_conv(&reference, w);
    }
    let expected = checksum(&reference);

    let mut pool = CachingPool::reserve(ctx, SLAB_BYTES)?;
    if let Some(observer) = &cfg.pool_observer {
        pool.register_observer(observer.clone());
    }

    let out = in_frame(
        ctx,
        "resnet50_forward",
        "torchvision/resnet.py",
        285,
        |ctx| -> Result<Vec<f32>> {
            // Model build: all weight and batch-norm tensors up front. The
            // bn running-stats tensors are zero-initialized lazily by the
            // device and first touched in the forward pass — early allocations.
            let mut w_tensors = Vec::new();
            let mut bn_tensors = Vec::new();
            in_frame(
                ctx,
                "Conv2d.__init__",
                "torch/nn/modules/conv.py",
                430,
                |ctx| {
                    for (l, w_host) in weights.iter().enumerate() {
                        let w = pool.alloc(ctx, W_LEN * 4, format!("conv{l}.weight"))?;
                        ctx.h2d_f32(w, w_host)?;
                        w_tensors.push(w);
                        bn_tensors.push(pool.alloc(
                            ctx,
                            BN_LEN * 4,
                            format!("bn{l}.running_stats"),
                        )?);
                    }
                    Ok::<_, gpu_sim::SimError>(())
                },
            )?;

            // Forward pass, retaining every activation (as autograd would).
            let mut acts = Vec::new();
            let x0 = pool.alloc(ctx, ACT_LEN * 4, "input")?;
            ctx.h2d_f32(x0, &image)?;
            acts.push(x0);
            for l in 0..LAYERS {
                let y = pool.alloc(ctx, ACT_LEN * 4, format!("act{l}"))?;
                // The paper's PyTorch inefficiency: `columns` is allocated
                // unconditionally, even when requires_columns is false.
                let requires_columns = USES_COLUMNS[l];
                let columns = if requires_columns || !variant.is_optimized() {
                    Some(in_frame(
                        ctx,
                        "slow_conv2d_forward",
                        "aten/src/ATen/native/ConvolutionMM2d.cpp",
                        127,
                        |ctx| pool.alloc(ctx, COL_LEN * 4, format!("columns{l}")),
                    )?)
                } else {
                    None
                };
                let kernel_columns = if requires_columns { columns } else { None };
                conv_kernel(
                    ctx,
                    l,
                    acts[l],
                    w_tensors[l],
                    kernel_columns,
                    bn_tensors[l],
                    y,
                )?;
                if let Some(c) = columns {
                    pool.free(c)?;
                }
                acts.push(y);
            }
            let mut out = vec![0.0f32; ACT_LEN as usize];
            ctx.d2h_f32(&mut out, acts[LAYERS])?;
            // Teardown: everything released only now (late deallocations).
            for t in acts {
                pool.free(t)?;
            }
            for w in w_tensors {
                pool.free(w)?;
            }
            for bn in bn_tensors {
                pool.free(bn)?;
            }
            Ok(out)
        },
    )?;

    let pool_peak = pool.stats().peak_allocated_bytes;
    pool.release(ctx)?;
    let got = checksum(&out);
    crate::common::assert_checksums_match(got, expected);
    assert_eq!(out, reference, "forward output must match host reference");
    Ok(finish(ctx, got, Some(pool_peak)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_pool_peak_drops_3_percent() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let up = u.pool_peak_bytes.unwrap() as f64;
        let op = o.pool_peak_bytes.unwrap() as f64;
        let reduction = 100.0 * (1.0 - op / up);
        assert!(
            (reduction - 3.0).abs() < 1.0,
            "expected ~3% pool-peak reduction, got {reduction:.1}%"
        );
    }

    #[test]
    fn cuda_level_peak_is_just_the_slab() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(u.peak_bytes, SLAB_BYTES);
    }
}
