//! Laghos: Lagrangian high-order hydrodynamics (the paper's Sec. 1.2 / 7.7
//! case study).
//!
//! `QUpdate::q_dx` and `q_dy` are last accessed in
//! `UpdateQuadratureData()`, yet the unoptimized program keeps them alive
//! until process exit — the paper's motivating **late deallocation**. The
//! solver phase then allocates its own work arrays on top, inflating the
//! peak. The optimized variant frees `q_dx`/`q_dy` right after
//! `UpdateQuadratureData()` (the paper's 2-line fix, 35 % peak reduction).
//! The mesh buffer is initialized twice (**dead write**), a small
//! `q_e` estimate buffer is never accessed (**unused allocation**), the
//! work array `w1` can reuse `q_dx`'s memory (**redundant allocation**),
//! and the mesh sits **temporarily idle** between the quadrature and solver
//! phases.

use crate::common::{checksum, finish, in_frame, synth_data, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Elements of the mesh/state buffer.
pub const MESH_LEN: u64 = 16 * 1024; // 64 KiB
/// Elements of each quadrature buffer (`q_dx`, `q_dy`).
pub const Q_LEN: u64 = 11 * 1024; // 44 KiB
/// Elements of the first solver work array (same size as `q_dx` → RA).
pub const W1_LEN: u64 = Q_LEN;
/// Elements of the second solver work array.
pub const W2_LEN: u64 = 14 * 1024; // 56 KiB
/// Elements of the never-used energy-estimate buffer.
pub const QE_LEN: u64 = 512; // 2 KiB

fn update_quadrature_data(
    ctx: &mut DeviceContext,
    mesh: DevicePtr,
    q_dx: DevicePtr,
    q_dy: DevicePtr,
) -> Result<()> {
    in_frame(
        ctx,
        "QUpdate::UpdateQuadratureData",
        "laghos_assembly.cpp",
        986,
        |ctx| {
            ctx.launch(
                "qupdate_kernel",
                LaunchConfig::cover(Q_LEN, 128)?,
                StreamId::DEFAULT,
                move |t| {
                    let i = t.global_x();
                    if i < Q_LEN {
                        let m = t.load_f32(mesh + (i % MESH_LEN) * 4);
                        t.store_f32(q_dx + i * 4, m * 2.0);
                        t.store_f32(q_dy + i * 4, m * 0.5 + 1.0);
                        t.flop(3);
                    }
                },
            )?;
            Ok(())
        },
    )
}

fn solver_step(
    ctx: &mut DeviceContext,
    mesh: DevicePtr,
    w1: DevicePtr,
    w2: DevicePtr,
) -> Result<()> {
    in_frame(
        ctx,
        "LagrangianHydroOperator::Mult",
        "laghos_solver.cpp",
        410,
        |ctx| {
            ctx.launch(
                "force_kernel",
                LaunchConfig::cover(W2_LEN, 128)?,
                StreamId::DEFAULT,
                move |t| {
                    let i = t.global_x();
                    if i < W2_LEN {
                        let m = t.load_f32(mesh + (i % MESH_LEN) * 4);
                        if i < W1_LEN {
                            t.store_f32(w1 + i * 4, m + 3.0);
                        }
                        t.store_f32(w2 + i * 4, m * m);
                        t.flop(3);
                    }
                },
            )?;
            ctx.launch(
                "energy_kernel",
                LaunchConfig::cover(W2_LEN, 128)?,
                StreamId::DEFAULT,
                move |t| {
                    let i = t.global_x();
                    if i < W2_LEN {
                        let v = t.load_f32(w2 + i * 4);
                        let w = if i < W1_LEN {
                            t.load_f32(w1 + i * 4)
                        } else {
                            1.0
                        };
                        t.store_f32(w2 + i * 4, v + w);
                        t.flop(2);
                    }
                },
            )?;
            Ok(())
        },
    )
}

/// Runs the Laghos workload.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if the solver result disagrees with the host reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let mesh_host = synth_data(MESH_LEN as usize, 91);
    // Host reference for w2 after both solver kernels.
    let reference: Vec<f32> = (0..W2_LEN as usize)
        .map(|i| {
            let m = mesh_host[i % MESH_LEN as usize];
            let w1 = if (i as u64) < W1_LEN { m + 3.0 } else { 1.0 };
            m * m + w1
        })
        .collect();
    let expected = checksum(&reference);

    let out = in_frame(ctx, "main", "laghos.cpp", 512, |ctx| -> Result<Vec<f32>> {
        let mesh = ctx.malloc(MESH_LEN * 4, "mesh_gpu")?;
        // Dead write: zeroed, then immediately overwritten by the upload.
        ctx.memset(mesh, 0, MESH_LEN * 4)?;
        ctx.h2d_f32(mesh, &mesh_host)?;
        let (q_dx, q_dy, q_e) =
            in_frame(ctx, "QUpdate::QUpdate", "laghos_assembly.cpp", 950, |ctx| {
                Ok::<_, gpu_sim::SimError>((
                    ctx.malloc(Q_LEN * 4, "q_dx")?,
                    ctx.malloc(Q_LEN * 4, "q_dy")?,
                    ctx.malloc(QE_LEN * 4, "q_e")?,
                ))
            })?;
        update_quadrature_data(ctx, mesh, q_dx, q_dy)?;
        if variant.is_optimized() {
            // The paper's fix: release the quadrature buffers right after
            // their last use.
            ctx.free(q_dx)?;
            ctx.free(q_dy)?;
            ctx.free(q_e)?;
        }
        let w1 = ctx.malloc(W1_LEN * 4, "w1_gpu")?;
        let w2 = ctx.malloc(W2_LEN * 4, "w2_gpu")?;
        solver_step(ctx, mesh, w1, w2)?;
        let mut out = vec![0.0f32; W2_LEN as usize];
        ctx.d2h_f32(&mut out, w2)?;
        ctx.free(w1)?;
        ctx.free(w2)?;
        ctx.free(mesh)?;
        if !variant.is_optimized() {
            // Unoptimized Laghos keeps them until the very end.
            ctx.free(q_dx)?;
            ctx.free(q_dy)?;
            ctx.free(q_e)?;
        }
        Ok(out)
    })?;

    let got = checksum(&out);
    crate::common::assert_checksums_match(got, expected);
    assert_eq!(out, reference, "solver output must match host reference");
    Ok(finish(ctx, got, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_drops_35_percent() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 35.0).abs() < 2.0,
            "expected ~35% reduction, got {reduction:.1}%"
        );
    }
}
