//! Fault-injection demo harness: chaos plans for the registered workloads
//! plus a small pipeline that *survives* injected allocation failures.
//!
//! These helpers deliberately live outside [`crate::registry`] — the
//! registry mirrors the paper's Table 1 and stays at twelve entries. A
//! chaos sweep (every [`FaultKind`] crossed with every registered workload)
//! lives in the `fault_injection` integration test; this module provides the
//! plan construction it uses and a demonstration of the bounded
//! shrink-and-retry recovery loop ([`gpu_sim::RetryPolicy`]).

use crate::common::{finish, in_frame, RunOutcome, Variant};
use crate::registry::{RunConfig, WorkloadSpec};
use gpu_sim::{DeviceContext, FaultKind, FaultPlan, LaunchConfig, Result, RetryPolicy, StreamId};

/// Builds the standard chaos plan for `kind`: one shot pinned at an early
/// API sequence number plus a seeded probabilistic drizzle, so both short
/// and long workloads are likely to get hit at least once.
///
/// Whether the pinned shot actually fires depends on the workload's API mix
/// (an `AllocFail` rule at sequence 3 is a no-op if API 3 is a kernel
/// launch) — callers asserting on delivered faults should inspect
/// [`DeviceContext::fault_log`] rather than assume.
pub fn plan_for(kind: FaultKind, seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .at_api(3, kind)
        .probabilistic(kind, 0.05)
}

/// Runs `spec` with [`plan_for`]'s faults installed on `ctx`.
///
/// The run may legitimately fail — that is the point of the exercise — so
/// the raw result is returned and `ctx.fault_log()` records what was
/// actually injected.
///
/// # Errors
///
/// Propagates whatever the workload returns under injected faults.
pub fn run_under_fault(
    ctx: &mut DeviceContext,
    spec: &WorkloadSpec,
    kind: FaultKind,
    seed: u64,
    cfg: &RunConfig,
) -> Result<RunOutcome> {
    ctx.set_fault_plan(plan_for(kind, seed));
    (spec.run)(ctx, Variant::Unoptimized, cfg)
}

/// Elements the resilient pipeline asks for (it may be granted fewer).
pub const WANT_ELEMS: u64 = 16 * 1024;

/// A demo pipeline built to survive allocation failure: its one allocation
/// goes through [`DeviceContext::malloc_with_retry`], shrinking the request
/// on OOM, and the kernel adapts to whatever size was granted — the
/// degradation path real caching allocators take under memory pressure.
///
/// # Errors
///
/// Fails only if retries are exhausted or a non-allocation fault is
/// injected.
pub fn resilient_pipeline(ctx: &mut DeviceContext) -> Result<RunOutcome> {
    in_frame(ctx, "resilient_pipeline", "faults.rs", 63, |ctx| {
        let (buf, granted) =
            ctx.malloc_with_retry(WANT_ELEMS * 4, "resilient_buf", RetryPolicy::default())?;
        let n = granted / 4;
        ctx.memset(buf, 0, granted)?;
        ctx.launch(
            "fill",
            LaunchConfig::cover(n, 256)?,
            StreamId::DEFAULT,
            move |t| {
                let i = t.global_x();
                if i < n {
                    t.store_f32(buf + i * 4, i as f32);
                }
            },
        )?;
        let mut out = vec![0.0f32; n as usize];
        ctx.d2h_f32(&mut out, buf)?;
        ctx.free(buf)?;
        let checksum: f64 = out.iter().map(|&v| f64::from(v)).sum();
        Ok(finish(ctx, checksum, None))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilient_pipeline_survives_forced_alloc_failure() {
        let mut ctx = DeviceContext::new_default();
        // Probability 1.0 would starve every retry; a one-shot rule models a
        // transient failure the retry loop must absorb.
        ctx.set_fault_plan(FaultPlan::new(0).at_api(0, FaultKind::AllocFail));
        let out = resilient_pipeline(&mut ctx).expect("retry absorbs a transient OOM");
        assert!(out.peak_bytes > 0);
        assert!(
            !ctx.fault_log().is_empty(),
            "the pinned AllocFail must have fired"
        );
    }

    #[test]
    fn resilient_pipeline_shrinks_when_memory_stays_scarce() {
        use gpu_sim::PlatformConfig;
        // On a 1 MiB device, occupy all but 40 KiB so the 64 KiB request
        // can only succeed after the policy halves it.
        let mut ctx = DeviceContext::new(PlatformConfig::test_tiny());
        let _hog = ctx.malloc((1 << 20) - 40 * 1024, "hog").unwrap();
        let out = resilient_pipeline(&mut ctx).expect("shrunk request fits");
        // Half the elements were filled: checksum is sum(0..n) for n = 8192.
        let n = f64::from(u32::try_from(WANT_ELEMS / 2).unwrap());
        assert_eq!(out.checksum, n * (n - 1.0) / 2.0);
    }

    #[test]
    fn chaos_run_reports_injected_faults() {
        let spec = crate::by_name("2MM").expect("registered");
        let mut ctx = DeviceContext::new_default();
        // Force every allocation to fail: the workload errors out, but the
        // log shows exactly what was delivered.
        ctx.set_fault_plan(FaultPlan::new(1).probabilistic(FaultKind::AllocFail, 1.0));
        let result = (spec.run)(&mut ctx, Variant::Unoptimized, &RunConfig::default());
        assert!(
            result.is_err(),
            "unretried allocations cannot survive p=1.0"
        );
        assert!(!ctx.fault_log().is_empty());
        assert!(ctx
            .fault_log()
            .iter()
            .all(|f| f.kind == FaultKind::AllocFail));
    }
}
