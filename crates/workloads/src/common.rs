//! Shared infrastructure for the simulated benchmark programs.

use gpu_sim::{DeviceContext, DevicePtr, Result, SimTime, SourceLoc};

/// Which variant of a workload to run.
///
/// `Unoptimized` reproduces the memory behaviour the paper profiled;
/// `Optimized` applies the paper's fixes (deferred allocations, early frees,
/// buffer reuse, removed dead writes, shrunken overallocations, shared-memory
/// placement, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// The original program, inefficiencies included.
    #[default]
    Unoptimized,
    /// The program with the paper's optimizations applied.
    Optimized,
}

impl Variant {
    /// Both variants, unoptimized first.
    pub const BOTH: [Variant; 2] = [Variant::Unoptimized, Variant::Optimized];

    /// Returns `true` for [`Variant::Optimized`].
    pub fn is_optimized(self) -> bool {
        self == Variant::Optimized
    }
}

/// What one workload run produced, for validation and Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Peak device memory (allocator high-water mark), in bytes.
    pub peak_bytes: u64,
    /// Peak *pool* memory for pool-based workloads (PyTorch), in bytes.
    pub pool_peak_bytes: Option<u64>,
    /// Simulated end-to-end time.
    pub elapsed: SimTime,
    /// A workload-defined checksum over the results; must be equal across
    /// variants (the paper's "optimized code does not change program
    /// semantics" check).
    pub checksum: f64,
}

/// Runs `body` inside a named host stack frame, so allocations inside get a
/// realistic call path.
pub fn in_frame<R>(
    ctx: &mut DeviceContext,
    function: &str,
    file: &str,
    line: u32,
    body: impl FnOnce(&mut DeviceContext) -> R,
) -> R {
    ctx.with_frame(SourceLoc::new(function, file, line), body)
}

/// Uploads `data` as `f32`s to a freshly allocated, labelled device buffer.
pub fn alloc_and_upload(ctx: &mut DeviceContext, label: &str, data: &[f32]) -> Result<DevicePtr> {
    let ptr = ctx.malloc(data.len() as u64 * 4, label)?;
    ctx.h2d_f32(ptr, data)?;
    Ok(ptr)
}

/// Downloads `n` `f32`s from the device.
pub fn download(ctx: &mut DeviceContext, src: DevicePtr, n: usize) -> Result<Vec<f32>> {
    let mut out = vec![0.0f32; n];
    ctx.d2h_f32(&mut out, src)?;
    Ok(out)
}

/// A cheap deterministic pseudo-random sequence for input data (no external
/// RNG needed; identical across runs and platforms).
pub fn synth_data(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            // Map to a small range so f32 matrix products stay exact enough.
            ((state >> 24) & 0xF) as f32 / 16.0
        })
        .collect()
}

/// Sum of a slice, as the standard checksum.
pub fn checksum(data: &[f32]) -> f64 {
    data.iter().map(|&v| f64::from(v)).sum()
}

/// Asserts two checksums match to within floating-point noise.
///
/// # Panics
///
/// Panics if the relative difference exceeds `1e-6`.
pub fn assert_checksums_match(a: f64, b: f64) {
    let denom = a.abs().max(b.abs()).max(1.0);
    assert!(
        ((a - b) / denom).abs() < 1e-6,
        "checksum mismatch: {a} vs {b}"
    );
}

/// Finishes a run: synchronizes the device and packages the outcome.
pub fn finish(ctx: &mut DeviceContext, checksum: f64, pool_peak: Option<u64>) -> RunOutcome {
    let elapsed = ctx.sync_device();
    RunOutcome {
        peak_bytes: ctx.allocator().stats().peak_bytes,
        pool_peak_bytes: pool_peak,
        elapsed,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_data_is_deterministic_and_bounded() {
        let a = synth_data(100, 7);
        let b = synth_data(100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0.0..1.0).contains(&v)));
        assert_ne!(synth_data(100, 8), a);
    }

    #[test]
    fn upload_download_round_trip() {
        let mut ctx = DeviceContext::new_default();
        let data = synth_data(64, 1);
        let ptr = alloc_and_upload(&mut ctx, "x", &data).unwrap();
        let back = download(&mut ctx, ptr, 64).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "checksum mismatch")]
    fn checksum_mismatch_panics() {
        assert_checksums_match(1.0, 2.0);
    }

    #[test]
    fn variants() {
        assert!(Variant::Optimized.is_optimized());
        assert!(!Variant::Unoptimized.is_optimized());
        assert_eq!(Variant::default(), Variant::Unoptimized);
    }
}
