//! Rodinia/huffman: GPU Huffman encoding (histogram → host codebook →
//! encode).
//!
//! DrGPUM's findings (Table 4): `d_cw32` is an **unused allocation** (a
//! large codeword scratch table the run configuration never touches) and
//! `d_sourceData` is **late-deallocated**; the usual eager batch allocation
//! adds **early allocations**, the equal-sized histogram/table/encode
//! buffers admit a **redundant allocation**, and the source sits
//! **temporarily idle** between the histogram and encode phases. Fixing
//! them cuts peak memory by ~67 %.

use crate::common::{finish, in_frame, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Number of input symbols.
pub const SRC_LEN: u64 = 3072;
/// Number of histogram bins / codebook entries.
pub const BINS: u64 = 512;
/// Bytes of the (never accessed) `d_cw32` codeword scratch table.
pub const CW32_BYTES: u64 = 30 * 1024;

fn synth_symbols(n: u64, seed: u32) -> Vec<u32> {
    let mut state = seed.wrapping_mul(747796405).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 27) & 0xF
        })
        .collect()
}

fn histogram_kernel(ctx: &mut DeviceContext, src: DevicePtr, hist: DevicePtr) -> Result<()> {
    ctx.launch(
        "vlc_histogram",
        // Non-atomic cross-block histogram increments: only deterministic
        // when blocks run in order.
        LaunchConfig::cover(SRC_LEN, 64)?.serialized(),
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < SRC_LEN {
                let sym = u64::from(t.load_u32(src + i * 4));
                let cur = t.load_u32(hist + sym * 4);
                t.store_u32(hist + sym * 4, cur + 1);
                t.flop(1);
            }
        },
    )?;
    Ok(())
}

fn encode_kernel(
    ctx: &mut DeviceContext,
    src: DevicePtr,
    table: DevicePtr,
    enc: DevicePtr,
) -> Result<()> {
    ctx.launch(
        "vlc_encode_kernel",
        // Threads i and i + BINS (different blocks) XOR-accumulate into the
        // same slot without atomics.
        LaunchConfig::cover(SRC_LEN, 64)?.serialized(),
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < SRC_LEN {
                let sym = u64::from(t.load_u32(src + i * 4));
                let code = t.load_u32(table + sym * 4);
                let slot = i % BINS;
                let cur = t.load_u32(enc + slot * 4);
                t.store_u32(enc + slot * 4, cur ^ code.rotate_left((i % 31) as u32));
                t.flop(3);
            }
        },
    )?;
    Ok(())
}

/// Host-side reference of the full pipeline, for validation.
fn host_reference(symbols: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut hist = vec![0u32; BINS as usize];
    for &s in symbols {
        hist[s as usize] += 1;
    }
    let table: Vec<u32> = hist
        .iter()
        .map(|&h| h.wrapping_mul(2654435761) | 1)
        .collect();
    let mut enc = vec![0u32; BINS as usize];
    for (i, &s) in symbols.iter().enumerate() {
        let code = table[s as usize];
        let slot = i % BINS as usize;
        enc[slot] ^= code.rotate_left((i % 31) as u32);
    }
    (table, enc)
}

/// Runs huffman; see the module docs for the two variants.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if the encoded output disagrees with the host reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let symbols = synth_symbols(SRC_LEN, 61);
    let (ref_table, ref_enc) = host_reference(&symbols);
    let src_bytes = SRC_LEN * 4;
    let bin_bytes = BINS * 4;

    let enc_out = in_frame(
        ctx,
        "main",
        "main_test_cu.cu",
        220,
        |ctx| -> Result<Vec<u32>> {
            match variant {
                Variant::Unoptimized => {
                    // Eager batch allocation, including the never-used d_cw32.
                    let (src, _cw32, hist, table, enc) =
                        in_frame(ctx, "initParams", "main_test_cu.cu", 64, |ctx| {
                            Ok::<_, gpu_sim::SimError>((
                                ctx.malloc(src_bytes, "d_sourceData")?,
                                ctx.malloc(CW32_BYTES, "d_cw32")?,
                                ctx.malloc(bin_bytes, "d_histogram")?,
                                ctx.malloc(bin_bytes, "d_codeTable")?,
                                ctx.malloc(bin_bytes, "d_encoded")?,
                            ))
                        })?;
                    ctx.h2d_u32(src, &symbols)?;
                    ctx.memset(hist, 0, bin_bytes)?;
                    histogram_kernel(ctx, src, hist)?;
                    let mut hist_host = vec![0u32; BINS as usize];
                    ctx.d2h_u32(&mut hist_host, hist)?;
                    // Host builds the codebook from the histogram.
                    let table_host: Vec<u32> = hist_host
                        .iter()
                        .map(|&h| h.wrapping_mul(2654435761) | 1)
                        .collect();
                    ctx.h2d_u32(table, &table_host)?;
                    ctx.memset(enc, 0, bin_bytes)?;
                    encode_kernel(ctx, src, table, enc)?;
                    let mut out = vec![0u32; BINS as usize];
                    ctx.d2h_u32(&mut out, enc)?;
                    // Everything released only at program exit.
                    for ptr in [src, _cw32, hist, table, enc] {
                        ctx.free(ptr)?;
                    }
                    assert_eq!(table_host, ref_table);
                    Ok(out)
                }
                Variant::Optimized => {
                    // No d_cw32 at all (UA fix); the histogram buffer is freed
                    // as soon as the host has read it, and the code table and
                    // encode buffers reuse its space (RA fix).
                    let src = ctx.malloc(src_bytes, "d_sourceData")?;
                    ctx.h2d_u32(src, &symbols)?;
                    let hist = ctx.malloc(bin_bytes, "d_histogram")?;
                    ctx.memset(hist, 0, bin_bytes)?;
                    histogram_kernel(ctx, src, hist)?;
                    let mut hist_host = vec![0u32; BINS as usize];
                    ctx.d2h_u32(&mut hist_host, hist)?;
                    ctx.free(hist)?;
                    let table_host: Vec<u32> = hist_host
                        .iter()
                        .map(|&h| h.wrapping_mul(2654435761) | 1)
                        .collect();
                    let table = ctx.malloc(bin_bytes, "d_codeTable")?;
                    ctx.h2d_u32(table, &table_host)?;
                    let enc = ctx.malloc(bin_bytes, "d_encoded")?;
                    ctx.memset(enc, 0, bin_bytes)?;
                    encode_kernel(ctx, src, table, enc)?;
                    let mut out = vec![0u32; BINS as usize];
                    ctx.d2h_u32(&mut out, enc)?;
                    // Free the source right after its last GPU use (LD fix).
                    ctx.free(src)?;
                    ctx.free(table)?;
                    ctx.free(enc)?;
                    assert_eq!(table_host, ref_table);
                    Ok(out)
                }
            }
        },
    )?;

    assert_eq!(enc_out, ref_enc, "encoded output must match host reference");
    let sum: f64 = enc_out.iter().map(|&v| f64::from(v)).sum();
    Ok(finish(ctx, sum, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_drops_two_thirds() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 67.0).abs() < 2.0,
            "expected ~67% reduction, got {reduction:.1}%"
        );
    }
}
