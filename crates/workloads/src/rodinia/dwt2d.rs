//! Rodinia/dwt2d: 2-D discrete wavelet transform of an RGB image.
//!
//! The program splits an interleaved RGB buffer into per-channel planes and
//! runs a Haar wavelet step on each. DrGPUM's findings (Table 4): the
//! outputs are **early allocations** (`c_r_out`), the per-channel planes
//! admit **redundant allocations** (`c_g_out` can reuse a dead plane),
//! `backup` is an **unused allocation**, the source is initialized twice —
//! a `cudaMemset` immediately overwritten by the `cudaMemcpy` of the image
//! (**dead write**) — and planes sit **temporarily idle** between the split
//! and their transform; everything is **late-deallocated**. The fixes cut
//! peak memory by ~48 %.

use crate::common::{checksum, finish, in_frame, synth_data, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Pixels per channel plane.
pub const PIXELS: u64 = 1024;
/// Bytes of the never-used `backup` buffer.
pub const BACKUP_BYTES: u64 = 10 * 1024;

fn split_kernel(ctx: &mut DeviceContext, src: DevicePtr, planes: [DevicePtr; 3]) -> Result<()> {
    ctx.launch(
        "c_CopySrcToComponents",
        LaunchConfig::cover(PIXELS, 64)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < PIXELS {
                for (c, plane) in planes.iter().enumerate() {
                    let v = t.load_f32(src + (i * 3 + c as u64) * 4);
                    t.store_f32(*plane + i * 4, v);
                }
            }
        },
    )?;
    Ok(())
}

fn haar_kernel(
    ctx: &mut DeviceContext,
    name: &str,
    plane: DevicePtr,
    out: DevicePtr,
) -> Result<()> {
    let half = PIXELS / 2;
    ctx.launch(
        name,
        LaunchConfig::cover(half, 64)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < half {
                let a = t.load_f32(plane + (2 * i) * 4);
                let b = t.load_f32(plane + (2 * i + 1) * 4);
                t.store_f32(out + i * 4, (a + b) * 0.5);
                t.store_f32(out + (half + i) * 4, (a - b) * 0.5);
                t.flop(4);
            }
        },
    )?;
    Ok(())
}

fn host_haar(plane: &[f32]) -> Vec<f32> {
    let half = plane.len() / 2;
    let mut out = vec![0.0f32; plane.len()];
    for i in 0..half {
        out[i] = (plane[2 * i] + plane[2 * i + 1]) * 0.5;
        out[half + i] = (plane[2 * i] - plane[2 * i + 1]) * 0.5;
    }
    out
}

/// Runs dwt2d; see the module docs for the two variants.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if a transformed plane disagrees with the host reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let n = PIXELS as usize;
    let rgb = synth_data(n * 3, 71);
    let plane_ref: Vec<Vec<f32>> = (0..3)
        .map(|c| {
            let plane: Vec<f32> = (0..n).map(|i| rgb[i * 3 + c]).collect();
            host_haar(&plane)
        })
        .collect();
    let src_bytes = PIXELS * 3 * 4;
    let plane_bytes = PIXELS * 4;

    let outs = in_frame(
        ctx,
        "main",
        "dwt2d.cu",
        300,
        |ctx| -> Result<Vec<Vec<f32>>> {
            match variant {
                Variant::Unoptimized => {
                    let src = ctx.malloc(src_bytes, "d_src")?;
                    let backup = ctx.malloc(BACKUP_BYTES, "backup")?;
                    let planes = [
                        ctx.malloc(plane_bytes, "c_r")?,
                        ctx.malloc(plane_bytes, "c_g")?,
                        ctx.malloc(plane_bytes, "c_b")?,
                    ];
                    let outs_d = [
                        ctx.malloc(plane_bytes, "c_r_out")?,
                        ctx.malloc(plane_bytes, "c_g_out")?,
                        ctx.malloc(plane_bytes, "c_b_out")?,
                    ];
                    // Dead write: the memset is immediately overwritten by the
                    // image upload with no read in between.
                    ctx.memset(src, 0, src_bytes)?;
                    ctx.h2d_f32(src, &rgb)?;
                    split_kernel(ctx, src, planes)?;
                    for c in 0..3 {
                        haar_kernel(ctx, "fdwt53Kernel", planes[c], outs_d[c])?;
                    }
                    let mut results = Vec::new();
                    for out_d in &outs_d {
                        let mut out = vec![0.0f32; n];
                        ctx.d2h_f32(&mut out, *out_d)?;
                        results.push(out);
                    }
                    for ptr in [src, backup, planes[0], planes[1], planes[2]] {
                        ctx.free(ptr)?;
                    }
                    for ptr in outs_d {
                        ctx.free(ptr)?;
                    }
                    Ok(results)
                }
                Variant::Optimized => {
                    // No backup, no double init, source freed after the split,
                    // later outputs reuse dead planes.
                    let src = ctx.malloc(src_bytes, "d_src")?;
                    ctx.h2d_f32(src, &rgb)?;
                    let planes = [
                        ctx.malloc(plane_bytes, "c_r")?,
                        ctx.malloc(plane_bytes, "c_g")?,
                        ctx.malloc(plane_bytes, "c_b")?,
                    ];
                    split_kernel(ctx, src, planes)?;
                    ctx.free(src)?;
                    let mut results = Vec::new();
                    // Channel r gets a fresh output; channels g and b write into
                    // the plane freed by the previous channel (RA fix).
                    let out_r = ctx.malloc(plane_bytes, "c_r_out")?;
                    haar_kernel(ctx, "fdwt53Kernel", planes[0], out_r)?;
                    let out_g = planes[0]; // reuse c_r's buffer
                    haar_kernel(ctx, "fdwt53Kernel", planes[1], out_g)?;
                    let out_b = planes[1]; // reuse c_g's buffer
                    haar_kernel(ctx, "fdwt53Kernel", planes[2], out_b)?;
                    for d in [out_r, out_g, out_b] {
                        let mut out = vec![0.0f32; n];
                        ctx.d2h_f32(&mut out, d)?;
                        results.push(out);
                    }
                    for ptr in [out_r, planes[0], planes[1], planes[2]] {
                        ctx.free(ptr)?;
                    }
                    Ok(results)
                }
            }
        },
    )?;

    for c in 0..3 {
        assert_eq!(outs[c], plane_ref[c], "channel {c} mismatch");
    }
    let sum: f64 = outs.iter().map(|o| checksum(o)).sum();
    Ok(finish(ctx, sum, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_drops_48_percent() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 48.0).abs() < 2.0,
            "expected ~48% reduction, got {reduction:.1}%"
        );
    }
}
