//! Rodinia workloads: huffman and dwt2d.

pub mod dwt2d;
pub mod huffman;
