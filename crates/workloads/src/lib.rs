//! # drgpum-workloads: the DrGPUM paper's benchmark suite, simulated
//!
//! One module per program of the paper's evaluation (Table 1 / Table 4):
//! Rodinia huffman and dwt2d, PolyBench 2MM/3MM/GramSchmidt/BICG, and the
//! PyTorch, Laghos, Darknet, XSBench, MiniMDock, and SimpleMultiCopy
//! applications. Every workload:
//!
//! * runs against the simulated GPU runtime in [`gpu_sim`], exercising the
//!   same allocation/access structure the paper describes for the real
//!   program;
//! * comes in an [`common::Variant::Unoptimized`] form (exhibiting the
//!   paper's inefficiency patterns) and an
//!   [`common::Variant::Optimized`] form (with the paper's fixes applied);
//! * computes real results validated against a host reference, so the
//!   "optimized code does not change program semantics" requirement is
//!   checked on every run.
//!
//! The [`registry`] lists all twelve programs with the paper's expected
//! patterns, peak-memory reductions, and speedups — the ground truth the
//! experiment harnesses in `drgpum-bench` compare against.
//!
//! # Example
//!
//! ```
//! use drgpum_workloads::common::Variant;
//! use drgpum_workloads::registry;
//!
//! let spec = registry::by_name("2MM").expect("2MM is registered");
//! let unopt = spec.run_fresh(Variant::Unoptimized).expect("runs");
//! let opt = spec.run_fresh(Variant::Optimized).expect("runs");
//! assert!(opt.peak_bytes < unopt.peak_bytes);
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod darknet;
pub mod faults;
pub mod laghos;
pub mod minimdock;
pub mod polybench;
pub mod pytorch;
pub mod registry;
pub mod rodinia;
pub mod simple_multi_copy;
pub mod xsbench;

pub use common::{RunOutcome, Variant};
pub use registry::{all, by_name, RunConfig, WorkloadSpec};
