//! SimpleMultiCopy: the multi-stream copy/compute overlap sample from the
//! CUDA Toolkit (the paper's Sec. 7.1 case study and Fig. 7 GUI example).
//!
//! Two independent pipelines (`in1 → kernel → out1` on stream 1,
//! `in2 → kernel → out2` on stream 2) are set up with all four buffers
//! allocated eagerly. DrGPUM's findings:
//!
//! * `d_data_out1` — **early allocation** (several GPU APIs run between its
//!   allocation and its first-touch kernel);
//! * `d_data_in1` — **temporarily idle** while the later allocations and
//!   memsets execute;
//! * `d_data_in2` / `d_data_out2` — **late deallocation**;
//! * `d_data_in2` — **dead write**: a `cudaMemset` immediately overwritten
//!   by the host upload.
//!
//! Staggering the allocations so only one pipeline's buffers live at a time
//! halves peak memory (the paper reports 50 %).

use crate::common::{finish, in_frame, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Elements per buffer.
pub const LEN: u64 = 16 * 1024; // 64 KiB

fn incr_kernel(
    ctx: &mut DeviceContext,
    name: &str,
    stream: StreamId,
    input: DevicePtr,
    output: DevicePtr,
) -> Result<()> {
    ctx.launch(name, LaunchConfig::cover(LEN, 128)?, stream, move |t| {
        let i = t.global_x();
        if i < LEN {
            let v = t.load_u32(input + i * 4);
            t.store_u32(output + i * 4, v.wrapping_mul(2).wrapping_add(1));
            t.flop(2);
        }
    })?;
    Ok(())
}

fn synth_u32(n: u64, seed: u32) -> Vec<u32> {
    let mut state = seed.wrapping_mul(2891336453).wrapping_add(7);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            state >> 8
        })
        .collect()
}

/// Runs SimpleMultiCopy.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if either pipeline's output disagrees with the reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let h_in1 = synth_u32(LEN, 131);
    let h_in2 = synth_u32(LEN, 132);
    let ref1: Vec<u32> = h_in1
        .iter()
        .map(|&v| v.wrapping_mul(2).wrapping_add(1))
        .collect();
    let ref2: Vec<u32> = h_in2
        .iter()
        .map(|&v| v.wrapping_mul(2).wrapping_add(1))
        .collect();
    let bytes = LEN * 4;

    let (out1, out2) = in_frame(ctx, "main", "simpleMultiCopy.cu", 200, |ctx| {
        let s1 = ctx.create_stream();
        let s2 = ctx.create_stream();
        match variant {
            Variant::Unoptimized => {
                // Eager setup phase on the default stream, exactly like the
                // CUDA sample: allocate and zero every buffer first, upload
                // afterwards, then overlap the two pipelines on streams 1/2.
                let in1 = ctx.malloc(bytes, "d_data_in1")?;
                ctx.memset(in1, 0, bytes)?; // in1 then idles through setup…
                let out1 = ctx.malloc(bytes, "d_data_out1")?;
                let in2 = ctx.malloc(bytes, "d_data_in2")?;
                ctx.memset(in2, 0, bytes)?; // dead write…
                let out2 = ctx.malloc(bytes, "d_data_out2")?;
                ctx.memcpy_h2d(in1, &as_bytes(&h_in1))?;
                ctx.memcpy_h2d(in2, &as_bytes(&h_in2))?; // …overwritten here
                incr_kernel(ctx, "incKernel", s1, in1, out1)?;
                incr_kernel(ctx, "incKernel", s2, in2, out2)?;
                let mut o1 = vec![0u8; bytes as usize];
                ctx.memcpy_d2h_on(&mut o1, out1, s1)?;
                let mut o2 = vec![0u8; bytes as usize];
                ctx.memcpy_d2h_on(&mut o2, out2, s2)?;
                ctx.sync_device();
                for ptr in [in1, out1, in2, out2] {
                    ctx.free(ptr)?;
                }
                Ok::<_, gpu_sim::SimError>((from_bytes(&o1), from_bytes(&o2)))
            }
            Variant::Optimized => {
                // Pipeline 1 completes and releases before pipeline 2
                // starts: only two buffers ever live together.
                let in1 = ctx.malloc(bytes, "d_data_in1")?;
                ctx.memcpy_h2d_on(in1, &as_bytes(&h_in1), s1)?;
                let out1 = ctx.malloc(bytes, "d_data_out1")?;
                incr_kernel(ctx, "incKernel", s1, in1, out1)?;
                let mut o1 = vec![0u8; bytes as usize];
                ctx.memcpy_d2h_on(&mut o1, out1, s1)?;
                ctx.sync_stream(s1)?;
                ctx.free(in1)?;
                ctx.free(out1)?;
                let in2 = ctx.malloc(bytes, "d_data_in2")?;
                ctx.memcpy_h2d_on(in2, &as_bytes(&h_in2), s2)?;
                let out2 = ctx.malloc(bytes, "d_data_out2")?;
                incr_kernel(ctx, "incKernel", s2, in2, out2)?;
                let mut o2 = vec![0u8; bytes as usize];
                ctx.memcpy_d2h_on(&mut o2, out2, s2)?;
                ctx.sync_device();
                ctx.free(in2)?;
                ctx.free(out2)?;
                Ok((from_bytes(&o1), from_bytes(&o2)))
            }
        }
    })?;

    assert_eq!(out1, ref1, "stream-1 pipeline output mismatch");
    assert_eq!(out2, ref2, "stream-2 pipeline output mismatch");
    let sum: f64 = out1.iter().chain(&out2).map(|&v| f64::from(v)).sum();
    Ok(finish(ctx, sum, None))
}

fn as_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn from_bytes(b: &[u8]) -> Vec<u32> {
    b.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_halves() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 50.0).abs() < 1.0,
            "expected ~50% reduction, got {reduction:.1}%"
        );
    }
}
