//! The workload registry: one entry per program of the paper's evaluation
//! (Table 1 / Table 4), with the expected results as ground truth for the
//! experiment harnesses.

use crate::common::{RunOutcome, Variant};
use drgpum_core::PatternKind;
use gpu_sim::pool::SharedPoolObserver;
use gpu_sim::{DeviceContext, Result};

/// Extra wiring a harness can hand to a workload run.
#[derive(Default)]
pub struct RunConfig {
    /// Observer registered with any caching pool the workload creates
    /// (DrGPUM's Sec. 5.4 interface). `None` runs the pool unobserved.
    pub pool_observer: Option<SharedPoolObserver>,
}

impl std::fmt::Debug for RunConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunConfig")
            .field("pool_observer", &self.pool_observer.is_some())
            .finish()
    }
}

/// Signature of a workload entry point.
pub type RunFn = fn(&mut DeviceContext, Variant, &RunConfig) -> Result<RunOutcome>;

/// One benchmark program of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Program name, e.g. `"huffman"`.
    pub name: &'static str,
    /// Suite, e.g. `"Rodinia"`, `"PolyBench"`, or `"-"` for applications.
    pub suite: &'static str,
    /// Application domain (Table 4 column).
    pub domain: &'static str,
    /// The paper's Table 1 row: patterns DrGPUM found in this program.
    pub expected_patterns: &'static [PatternKind],
    /// The paper's Table 4 peak-memory reduction, if any.
    pub expected_reduction_pct: Option<f64>,
    /// The paper's Table 4 speedups `(RTX 3090, A100)`, if any.
    pub expected_speedup: Option<(f64, f64)>,
    /// Total source lines modified by the paper's fixes (Table 4).
    pub sloc_modified: u32,
    /// Whether the workload allocates through a caching pool (Sec. 5.4).
    pub uses_pool: bool,
    /// Whether the workload dispatches on multiple streams (Sec. 5.3).
    pub multi_stream: bool,
    /// Element granularity hint for frequency maps: `None` uses the default
    /// 4 bytes; GramSchmidt analyzes `R_gpu` at row-slice granularity
    /// (Sec. 7.3 reports per-slice variance).
    pub elem_size_hint: Option<u32>,
    /// Entry point.
    pub run: RunFn,
}

impl WorkloadSpec {
    /// Runs the workload on a fresh default-platform context.
    pub fn run_fresh(&self, variant: Variant) -> Result<RunOutcome> {
        let mut ctx = DeviceContext::new_default();
        (self.run)(&mut ctx, variant, &RunConfig::default())
    }
}

/// All twelve programs, in the paper's Table 1 order.
pub fn all() -> Vec<WorkloadSpec> {
    use PatternKind::*;
    vec![
        WorkloadSpec {
            name: "huffman",
            suite: "Rodinia",
            domain: "Lossless compression",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                RedundantAllocation,
                UnusedAllocation,
                TemporaryIdleness,
            ],
            expected_reduction_pct: Some(67.0),
            expected_speedup: None,
            sloc_modified: 4,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::rodinia::huffman::run,
        },
        WorkloadSpec {
            name: "dwt2d",
            suite: "Rodinia",
            domain: "Image/video compression",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                RedundantAllocation,
                UnusedAllocation,
                TemporaryIdleness,
                DeadWrite,
            ],
            expected_reduction_pct: Some(48.0),
            expected_speedup: None,
            sloc_modified: 15,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::rodinia::dwt2d::run,
        },
        WorkloadSpec {
            name: "2MM",
            suite: "PolyBench",
            domain: "Matrix multiplication",
            expected_patterns: &[EarlyAllocation, LateDeallocation, RedundantAllocation],
            expected_reduction_pct: Some(40.0),
            expected_speedup: None,
            sloc_modified: 11,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::polybench::two_mm::run,
        },
        WorkloadSpec {
            name: "3MM",
            suite: "PolyBench",
            domain: "Matrix multiplication",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                RedundantAllocation,
                TemporaryIdleness,
            ],
            expected_reduction_pct: Some(57.0),
            expected_speedup: None,
            sloc_modified: 15,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::polybench::three_mm::run,
        },
        WorkloadSpec {
            name: "GramSchmidt",
            suite: "PolyBench",
            domain: "Gram-Schmidt decomposition",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                TemporaryIdleness,
                NonUniformAccessFrequency,
                StructuredAccess,
            ],
            expected_reduction_pct: Some(33.0),
            expected_speedup: Some((1.39, 1.30)),
            sloc_modified: 10,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: Some(crate::polybench::gramschmidt::ROW_BYTES),
            run: crate::polybench::gramschmidt::run,
        },
        WorkloadSpec {
            name: "BICG",
            suite: "PolyBench",
            domain: "Linear solver",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                RedundantAllocation,
                NonUniformAccessFrequency,
            ],
            expected_reduction_pct: None,
            expected_speedup: Some((2.06, 2.48)),
            sloc_modified: 16,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::polybench::bicg::run,
        },
        WorkloadSpec {
            name: "PyTorch",
            suite: "-",
            domain: "Deep learning",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                RedundantAllocation,
                UnusedAllocation,
                TemporaryIdleness,
            ],
            expected_reduction_pct: Some(3.0),
            expected_speedup: None,
            sloc_modified: 3,
            uses_pool: true,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::pytorch::run,
        },
        WorkloadSpec {
            name: "Laghos",
            suite: "-",
            domain: "LAGrangian solver",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                RedundantAllocation,
                UnusedAllocation,
                TemporaryIdleness,
                DeadWrite,
            ],
            expected_reduction_pct: Some(35.0),
            expected_speedup: None,
            sloc_modified: 4,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::laghos::run,
        },
        WorkloadSpec {
            name: "Darknet",
            suite: "-",
            domain: "Deep learning",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                RedundantAllocation,
                UnusedAllocation,
                MemoryLeak,
                TemporaryIdleness,
                DeadWrite,
            ],
            expected_reduction_pct: Some(83.0),
            expected_speedup: None,
            sloc_modified: 6,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::darknet::run,
        },
        WorkloadSpec {
            name: "XSBench",
            suite: "-",
            domain: "Neutronics",
            expected_patterns: &[MemoryLeak, Overallocation],
            expected_reduction_pct: Some(63.0),
            expected_speedup: None,
            sloc_modified: 9,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::xsbench::run,
        },
        WorkloadSpec {
            name: "MiniMDock",
            suite: "-",
            domain: "Molecular biology",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                UnusedAllocation,
                TemporaryIdleness,
                Overallocation,
            ],
            expected_reduction_pct: Some(64.0),
            expected_speedup: None,
            sloc_modified: 2,
            uses_pool: false,
            multi_stream: false,
            elem_size_hint: None,
            run: crate::minimdock::run,
        },
        WorkloadSpec {
            name: "SimpleMultiCopy",
            suite: "-",
            domain: "Data communication",
            expected_patterns: &[
                EarlyAllocation,
                LateDeallocation,
                TemporaryIdleness,
                DeadWrite,
            ],
            expected_reduction_pct: Some(50.0),
            expected_speedup: None,
            sloc_modified: 10,
            uses_pool: false,
            multi_stream: true,
            elem_size_hint: None,
            run: crate::simple_multi_copy::run,
        },
    ]
}

/// Looks a workload up by name (case-insensitive).
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_programs_in_table1_order() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "huffman",
                "dwt2d",
                "2MM",
                "3MM",
                "GramSchmidt",
                "BICG",
                "PyTorch",
                "Laghos",
                "Darknet",
                "XSBench",
                "MiniMDock",
                "SimpleMultiCopy"
            ]
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("bicg").is_some());
        assert!(by_name("BICG").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_workload_has_expected_patterns() {
        for w in all() {
            assert!(
                !w.expected_patterns.is_empty(),
                "{} must expect at least one pattern",
                w.name
            );
        }
    }
}
