//! MiniMDock: particle-grid protein–ligand docking (the paper's Sec. 1.2 /
//! 7.6 case study).
//!
//! The unoptimized program always allocates a maximum constant-size chunk
//! for `pMem_conformations` regardless of the run's actual population —
//! the paper measures only 2.4 × 10⁻³ % of its elements accessed, with
//! fragmentation of 4.89 × 10⁻³ % (**overallocation**, the "easy win"
//! quadrant of Table 2). Sizing the array from the program inputs (the
//! paper's 2-line fix) reclaims 64 % of peak memory. The run also exhibits
//! the usual eager-alloc/lazy-free **early allocation** / **late
//! deallocation** / **temporary idleness**, plus an **unused** angle table.

use crate::common::{finish, in_frame, synth_data, RunOutcome, Variant};
use crate::registry::RunConfig;
use gpu_sim::{DeviceContext, DevicePtr, LaunchConfig, Result, StreamId};

/// Bytes of the constant-max `pMem_conformations` allocation.
pub const CONF_MAX_BYTES: u64 = 960_000;
/// Conformations the run actually produces (in f32 elements).
pub const CONF_USED_ELEMS: u64 = 60;
/// Elements of the atom table.
pub const ATOMS_LEN: u64 = 52 * 1024; // 208 KiB
/// Elements of the interaction grid.
pub const GRIDS_LEN: u64 = 52 * 1024; // 208 KiB
/// Elements of the per-pose energy buffer.
pub const ENERGY_LEN: u64 = 16 * 1024; // 64 KiB
/// Elements of the never-used rotation-angle table.
pub const ANGLES_LEN: u64 = 12 * 1024; // 48 KiB

fn docking_kernel(
    ctx: &mut DeviceContext,
    atoms: DevicePtr,
    grids: DevicePtr,
    energies: DevicePtr,
) -> Result<()> {
    ctx.launch(
        "gpu_calc_initpop_kernel",
        LaunchConfig::cover(ENERGY_LEN, 128)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < ENERGY_LEN {
                let mut e = 0.0f32;
                // Thirteen grid/atom taps per pose; 13 × ENERGY_LEN is an
                // exact multiple of the table sizes, so coverage is full
                // and uniform.
                for tap in 0..13u64 {
                    let idx = (i * 13 + tap) % ATOMS_LEN;
                    let a = t.load_f32(atoms + idx * 4);
                    let g = t.load_f32(grids + (idx % GRIDS_LEN) * 4);
                    e += a * g;
                    t.flop(2);
                }
                t.store_f32(energies + i * 4, e);
            }
        },
    )?;
    Ok(())
}

fn sort_kernel(ctx: &mut DeviceContext, energies: DevicePtr) -> Result<()> {
    ctx.launch(
        "gpu_sort_pop_kernel",
        LaunchConfig::cover(ENERGY_LEN, 128)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < ENERGY_LEN {
                let e = t.load_f32(energies + i * 4);
                t.store_f32(energies + i * 4, e * 0.5);
                t.flop(1);
            }
        },
    )?;
    Ok(())
}

fn gen_kernel(
    ctx: &mut DeviceContext,
    energies: DevicePtr,
    conformations: DevicePtr,
) -> Result<()> {
    ctx.launch(
        "gpu_gen_and_eval_newpops_kernel",
        LaunchConfig::cover(CONF_USED_ELEMS, 32)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < CONF_USED_ELEMS {
                // The best poses land at the *front* of the conformations
                // array; the rest of the constant-max chunk stays untouched.
                let e = t.load_f32(energies + (i * 7 % ENERGY_LEN) * 4);
                t.store_f32(conformations + i * 4, e * 0.25 + i as f32);
                t.flop(2);
            }
        },
    )?;
    Ok(())
}

/// Docking generations per run.
pub const GENERATIONS: usize = 2;

fn host_reference(atoms: &[f32], grids: &[f32]) -> Vec<f32> {
    let energies: Vec<f32> = (0..ENERGY_LEN as usize)
        .map(|i| {
            let e: f32 = (0..13usize)
                .map(|tap| {
                    let idx = (i * 13 + tap) % ATOMS_LEN as usize;
                    atoms[idx] * grids[idx % GRIDS_LEN as usize]
                })
                .sum();
            e * 0.5
        })
        .collect();
    (0..CONF_USED_ELEMS as usize)
        .map(|i| energies[i * 7 % ENERGY_LEN as usize] * 0.25 + i as f32)
        .collect()
}

/// Runs the MiniMDock workload.
///
/// # Errors
///
/// Propagates simulator errors (they indicate workload bugs).
///
/// # Panics
///
/// Panics if the docked conformations disagree with the host reference.
pub fn run(ctx: &mut DeviceContext, variant: Variant, _cfg: &RunConfig) -> Result<RunOutcome> {
    let atoms_host = synth_data(ATOMS_LEN as usize, 111);
    let grids_host = synth_data(GRIDS_LEN as usize, 112);
    let reference = host_reference(&atoms_host, &grids_host);

    let out = in_frame(
        ctx,
        "main",
        "host/src/main.cpp",
        80,
        |ctx| -> Result<Vec<f32>> {
            // setup_gpu: eager batch allocation of everything.
            let (conf, atoms, grids, energies, angles) = in_frame(
                ctx,
                "setup_gpu",
                "host/src/performdocking.cpp",
                244,
                |ctx| {
                    let conf_bytes = if variant.is_optimized() {
                        // The fix: size by the run's actual population.
                        CONF_USED_ELEMS * 4
                    } else {
                        CONF_MAX_BYTES
                    };
                    Ok::<_, gpu_sim::SimError>((
                        ctx.malloc(conf_bytes, "pMem_conformations")?,
                        ctx.malloc(ATOMS_LEN * 4, "pMem_atoms")?,
                        ctx.malloc(GRIDS_LEN * 4, "pMem_grids")?,
                        ctx.malloc(ENERGY_LEN * 4, "pMem_energies")?,
                        ctx.malloc(ANGLES_LEN * 4, "pMem_angles")?,
                    ))
                },
            )?;
            ctx.h2d_f32(atoms, &atoms_host)?;
            ctx.h2d_f32(grids, &grids_host)?;
            for _generation in 0..GENERATIONS {
                docking_kernel(ctx, atoms, grids, energies)?;
                sort_kernel(ctx, energies)?;
                gen_kernel(ctx, energies, conf)?;
            }
            let mut out = vec![0.0f32; CONF_USED_ELEMS as usize];
            ctx.d2h_f32(&mut out, conf)?;
            // Lazy batch deallocation.
            for ptr in [conf, atoms, grids, energies, angles] {
                ctx.free(ptr)?;
            }
            Ok(out)
        },
    )?;

    assert_eq!(out, reference, "conformations must match host reference");
    let sum: f64 = out.iter().map(|&v| f64::from(v)).sum();
    Ok(finish(ctx, sum, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_peak_drops_64_percent() {
        let u = run(
            &mut DeviceContext::new_default(),
            Variant::Unoptimized,
            &RunConfig::default(),
        )
        .unwrap();
        let o = run(
            &mut DeviceContext::new_default(),
            Variant::Optimized,
            &RunConfig::default(),
        )
        .unwrap();
        crate::common::assert_checksums_match(u.checksum, o.checksum);
        let reduction = 100.0 * (1.0 - o.peak_bytes as f64 / u.peak_bytes as f64);
        assert!(
            (reduction - 64.0).abs() < 2.0,
            "expected ~64% reduction, got {reduction:.1}%"
        );
    }

    #[test]
    fn conformations_touch_fraction_matches_paper() {
        let pct = 100.0 * (CONF_USED_ELEMS * 4) as f64 / CONF_MAX_BYTES as f64;
        // Paper: 2.4e-3 % of elements accessed.
        assert!(pct < 0.05, "touched fraction {pct}% must be tiny");
    }
}
