#!/usr/bin/env bash
# kill -9 crash-consistency smoke: start a profiled run with a streaming
# trace, SIGKILL it mid-flight, then prove the fsynced prefix recovers via
# `drgpum run --resume` (degraded exit code 3; --strict escalates to 1).
#
# Usage: scripts/kill9_salvage_smoke.sh [path/to/drgpum]
set -euo pipefail

BIN="${1:-target/release/drgpum}"
TRACE="$(mktemp -t drgpum-smoke-XXXXXX.trace)"
trap 'rm -f "$TRACE"' EXIT

if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run \`cargo build --release\` first)" >&2
    exit 1
fi

echo "== streaming a profiled run to $TRACE, then kill -9"
"$BIN" run Darknet --intra --stream-trace "$TRACE" >/dev/null 2>&1 &
VICTIM=$!

# Wait until a few fsynced delta frames are on disk.
for _ in $(seq 1 1200); do
    if [ "$(grep -c 'section delta ' "$TRACE" 2>/dev/null || echo 0)" -ge 3 ]; then
        break
    fi
    if ! kill -0 "$VICTIM" 2>/dev/null; then
        echo "error: profiled run exited before it could be killed" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
echo "   killed pid $VICTIM with $(grep -c 'section delta ' "$TRACE") delta frames on disk"

echo "== drgpum run --resume must recover the prefix and exit 3"
set +e
"$BIN" run --resume "$TRACE" > /tmp/drgpum-smoke-resume.out 2>&1
CODE=$?
set -e
if [ "$CODE" -ne 3 ]; then
    echo "error: expected exit code 3 from --resume, got $CODE" >&2
    cat /tmp/drgpum-smoke-resume.out >&2
    exit 1
fi
grep -q "recovered prefix" /tmp/drgpum-smoke-resume.out
grep -q "GPU APIs" /tmp/drgpum-smoke-resume.out

echo "== --strict must escalate the same recovery to exit 1"
set +e
"$BIN" run --resume "$TRACE" --strict >/dev/null 2>&1
CODE=$?
set -e
if [ "$CODE" -ne 1 ]; then
    echo "error: expected exit code 1 from --resume --strict, got $CODE" >&2
    exit 1
fi

echo "ok: kill -9 trace salvaged and resumed"
