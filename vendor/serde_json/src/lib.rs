//! Minimal, dependency-free stand-in for the `serde_json` crate.
//!
//! The workspace builds in fully offline environments, so the real
//! `serde_json` (and its `serde` dependency) cannot be fetched from a
//! registry. This shim supplies the subset the workspace uses: the dynamic
//! [`Value`] tree, the [`json!`] literal macro, a strict recursive-descent
//! parser ([`from_str`]) and compact/pretty printers ([`to_string`],
//! [`to_string_pretty`]). Objects are backed by a `BTreeMap`, matching the
//! default (sorted-key) behaviour of the real crate.

use std::collections::BTreeMap;
use std::fmt;

/// Map type used for JSON objects (sorted keys, like default serde_json).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: non-negative integer, negative integer, or float.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An integer representable as `u64`.
    PosInt(u64),
    /// A negative integer representable as `i64`.
    NegInt(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// Numeric value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::PosInt(a), Number::NegInt(b)) | (Number::NegInt(b), Number::PosInt(a)) => {
                b >= 0 && a == b as u64
            }
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// A key-sorted object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// String slice if this is a JSON string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `i64` if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `f64` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// `bool` if this is a JSON boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Slice of elements if this is a JSON array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Map of members if this is a JSON object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True if `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True if a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True if a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True if an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True if an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Member lookup that returns `None` for missing keys / wrong shapes.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::from(*other),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_num_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(n: $t) -> Number {
                Number::PosInt(n as u64)
            }
        }
    )*};
}
impl_number_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(n: $t) -> Number {
                if n >= 0 {
                    Number::PosInt(n as u64)
                } else {
                    Number::NegInt(n as i64)
                }
            }
        }
    )*};
}
impl_number_from_signed!(i8, i16, i32, i64, isize);

impl From<f32> for Number {
    fn from(f: f32) -> Number {
        Number::Float(f as f64)
    }
}
impl From<f64> for Number {
    fn from(f: f64) -> Number {
        Number::Float(f)
    }
}

/// Conversion of Rust data into a [`Value`] — the leaf step of [`json!`].
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Value;
}

/// Converts anything [`ToJson`] into a [`Value`].
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from(*self))
            }
        }
    )*};
}
impl_to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Builds a [`Value`] from a JSON-shaped literal, like serde_json's macro.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map: $crate::Map = $crate::Map::new();
        $crate::json_object_inner!(map $($tt)*);
        $crate::Value::Object(map)
    }};
    ([ $($tt:tt)* ]) => {{
        #![allow(clippy::vec_init_then_push)]
        #[allow(unused_mut)]
        let mut vec: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_inner!(vec $($tt)*);
        $crate::Value::Array(vec)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches object members.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_inner {
    ($map:ident) => {};
    ($map:ident ,) => {};
    ($map:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $( $crate::json_object_inner!($map $($rest)*); )?
    };
    ($map:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $( $crate::json_object_inner!($map $($rest)*); )?
    };
    ($map:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $( $crate::json_object_inner!($map $($rest)*); )?
    };
    ($map:ident $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $( $crate::json_object_inner!($map $($rest)*); )?
    };
}

/// Implementation detail of [`json!`]: munches array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_inner {
    ($vec:ident) => {};
    ($vec:ident ,) => {};
    ($vec:ident null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $( $crate::json_array_inner!($vec $($rest)*); )?
    };
    ($vec:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($inner)* }));
        $( $crate::json_array_inner!($vec $($rest)*); )?
    };
    ($vec:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($inner)* ]));
        $( $crate::json_array_inner!($vec $($rest)*); )?
    };
    ($vec:ident $value:expr $(, $($rest:tt)*)?) => {
        $vec.push($crate::to_value(&$value));
        $( $crate::json_array_inner!($vec $($rest)*); )?
    };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) if !f.is_finite() => out.push_str("null"),
        Number::Float(f) if f.fract() == 0.0 && f.abs() < 1e16 => {
            out.push_str(&format!("{f:.1}"));
        }
        Number::Float(f) => out.push_str(&format!("{f}")),
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(&mut s, self);
        f.write_str(&s)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_json());
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_json(), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Error produced by [`from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(Error {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => self.err(format!("unexpected character `{}`", b as char)),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]` in array"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected `,` or `}` in object"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            match std::str::from_utf8(&self.bytes[start..self.pos]) {
                Ok(chunk) => out.push_str(chunk),
                Err(_) => return self.err("invalid UTF-8 in string"),
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return self.err("invalid low surrogate");
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                            continue;
                        }
                        _ => return self.err("invalid escape sequence"),
                    }
                    self.pos += 1;
                }
                _ => return self.err("unterminated string"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated unicode escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos = end;
                Ok(v)
            }
            None => self.err("invalid unicode escape"),
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error {
                message: "invalid number".into(),
                offset: start,
            })?
            .to_owned();
        if text.is_empty() || text == "-" {
            return self.err("invalid number");
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::Float(f))),
            Err(_) => self.err("invalid number"),
        }
    }
}

/// Parses a JSON document, requiring the whole input to be consumed.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after JSON value");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_macro_builds_nested_values() {
        let name = "obj";
        let v = json!({
            "tool": "drgpum",
            "count": 3,
            "nested": { "list": [1, 2, 3], "none": null },
            "computed": format!("{name}-1"),
            "items": [1u64, 2].iter().map(|i| json!({"i": i})).collect::<Vec<_>>(),
        });
        assert_eq!(v["tool"], "drgpum");
        assert_eq!(v["count"], 3);
        assert_eq!(v["nested"]["list"].as_array().unwrap().len(), 3);
        assert!(v["nested"]["none"].is_null());
        assert_eq!(v["computed"], "obj-1");
        assert_eq!(v["items"][1]["i"], 2u64);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = json!({
            "s": "a \"quoted\"\nline",
            "f": 1.5,
            "whole": 2.0,
            "neg": -7,
            "big": 18_446_744_073_709_551_615u64,
            "arr": [true, false, null],
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
        let compact = to_string(&v).unwrap();
        assert!(compact.contains("\"whole\":2.0"), "{compact}");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str("\"a\\u00e9b \\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "aéb 😀");
    }
}
