//! Minimal, dependency-free stand-in for the `parking_lot` crate.
//!
//! This workspace builds in fully offline environments, so the real
//! `parking_lot` cannot be fetched from a registry. This shim exposes the
//! subset of its API the workspace uses — `Mutex`/`RwLock` whose guards are
//! returned directly from `lock()` (no `Result`) — implemented over
//! `std::sync`. Lock poisoning is deliberately swallowed: like the real
//! `parking_lot`, a panic while holding the lock does not poison it for
//! other threads, which is exactly the behaviour the profiler's
//! panic-isolation layer relies on.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive with the `parking_lot` calling convention.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std::sync::Mutex`, recovers from poisoning: a panic in a
    /// previous critical section does not permanently wedge the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with the `parking_lot` calling convention.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn unsizes_behind_arc() {
        trait Speak {
            fn word(&self) -> &'static str;
        }
        struct Dog;
        impl Speak for Dog {
            fn word(&self) -> &'static str {
                "woof"
            }
        }
        let concrete: Arc<Mutex<Dog>> = Arc::new(Mutex::new(Dog));
        let dynamic: Arc<Mutex<dyn Speak>> = concrete;
        assert_eq!(dynamic.lock().word(), "woof");
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
