//! Quickstart: profile a small GPU program and read the report.
//!
//! Writes a deliberately sloppy program — an early allocation, a leak, a
//! dead write, and an overallocated buffer — and lets DrGPUM find all of
//! them.
//!
//! Run with `cargo run --example quickstart`.

use drgpum::prelude::*;

fn main() -> Result<(), SimError> {
    let mut ctx = DeviceContext::new_default();
    // Intra-object analysis sees element-level waste too.
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::intra_object());

    ctx.with_frame(SourceLoc::new("main", "quickstart.rs", 14), |ctx| {
        // (1) Early allocation: `result` is created long before first use.
        let result = ctx.malloc(64 * 1024, "result")?;
        // (2) Overallocation: a 1 MiB scratch buffer…
        let scratch = ctx.malloc(1 << 20, "scratch")?;
        // (3) A leak: `lookup` is never freed.
        let lookup = ctx.malloc(4096, "lookup_table")?;
        ctx.memset(lookup, 0, 4096)?;
        // (4) Dead write: zeroing `input` right before uploading over it.
        let input = ctx.malloc(64 * 1024, "input")?;
        ctx.memset(input, 0, 64 * 1024)?;
        ctx.memcpy_h2d(input, &vec![3u8; 64 * 1024])?;

        // The kernel touches all of `input`/`result` but only the first
        // 1 KiB of the megabyte of scratch.
        let n = 16 * 1024u64;
        ctx.launch(
            "compute",
            LaunchConfig::cover(n, 128)?,
            StreamId::DEFAULT,
            move |t| {
                let i = t.global_x();
                if i < n {
                    let v = t.load_f32(input + i * 4);
                    if i < 256 {
                        t.store_f32(scratch + i * 4, v * 2.0);
                    }
                    t.store_f32(result + i * 4, v + 1.0);
                }
            },
        )?;

        ctx.free(input)?;
        ctx.free(scratch)?;
        ctx.free(result)?;
        Ok::<_, SimError>(())
    })?;

    let report = profiler.report(&ctx);
    println!("{}", report.render_text());

    assert!(report.has_pattern(PatternKind::EarlyAllocation));
    assert!(report.has_pattern(PatternKind::MemoryLeak));
    assert!(report.has_pattern(PatternKind::DeadWrite));
    assert!(report.has_pattern(PatternKind::Overallocation));
    println!("quickstart: all four planted inefficiencies were found");
    Ok(())
}
