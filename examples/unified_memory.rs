//! Unified-memory profiling — the paper's future-work extension (Sec. 8):
//! "memory inefficiencies that reside in CPU-GPU interactions, such as
//! page-level false sharing in unified memory".
//!
//! A managed buffer holds a CPU-updated control block in the first half of
//! a page and GPU-consumed data in the second half. Every iteration the CPU
//! writes its half and the GPU reads its own — disjoint bytes, same page —
//! so the page ping-pongs across the interconnect. DrGPUM's extension
//! classifies the page as *false sharing* and suggests splitting the
//! allocation at page boundaries.
//!
//! Run with `cargo run --example unified_memory`.

use drgpum::prelude::*;

const PAGE: u64 = 4096;

fn main() -> Result<(), SimError> {
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());

    // One managed page: CPU control words in the first half, GPU-read
    // payload in the second half.
    let shared = ctx.malloc_managed(PAGE, "control_block")?;
    let payload = shared + PAGE / 2;

    // A separate, well-behaved managed buffer the GPU owns after init.
    let device_only = ctx.malloc_managed(PAGE, "device_data")?;
    ctx.managed_write_f32s(device_only, &vec![1.0f32; (PAGE / 4) as usize])?;

    let iterations = 6;
    for step in 0..iterations {
        // CPU updates its control words (first half of the page)…
        ctx.managed_write_f32(shared, step as f32)?;
        ctx.managed_write_f32(shared + 4, (step * 2) as f32)?;
        // …then the GPU reads only the payload half — and the whole page
        // faults over anyway.
        ctx.launch(
            "consume",
            LaunchConfig::cover(64, 64)?,
            StreamId::DEFAULT,
            move |t| {
                let i = t.global_x();
                if i < 64 {
                    let v = t.load_f32(payload + i * 4);
                    let d = t.load_f32(device_only + i * 4);
                    t.store_f32(device_only + i * 4, v + d);
                }
            },
        )?;
    }
    ctx.sync_device();
    println!(
        "total page migrations: {}",
        ctx.unified().total_migrations()
    );
    ctx.free(shared)?;
    ctx.free(device_only)?;

    let report = profiler.report(&ctx);
    println!("{}", report.render_text());

    let fs = report
        .findings
        .iter()
        .find(|f| f.kind() == PatternKind::PageFalseSharing)
        .expect("the control block page is falsely shared");
    assert_eq!(fs.object.label, "control_block");
    println!("false sharing detected: {}", fs.suggestion);
    assert!(
        !report
            .findings_for("device_data")
            .iter()
            .any(|f| f.kind() == PatternKind::PageFalseSharing
                || f.kind() == PatternKind::PageThrashing),
        "the device-resident buffer migrates once and stays put"
    );
    println!("unified_memory: extension analysis complete");
    Ok(())
}
