//! Multi-stream profiling: the dependency graph and topological timestamps
//! of Sec. 5.3.
//!
//! Two pipelines overlap on separate streams with a cross-stream event
//! dependency; DrGPUM sequences the GPU APIs with Kahn's algorithm over the
//! RAW/WAW/WAR + program-order graph and reports inefficiency distances in
//! topological time.
//!
//! Run with `cargo run --example multi_stream`.

use drgpum::prelude::*;

fn main() -> Result<(), SimError> {
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());

    let s1 = ctx.create_stream();
    let s2 = ctx.create_stream();
    let n = 8 * 1024u64;
    let bytes = n * 4;

    // Producer on stream 1 writes `a`; consumer on stream 2 reads it after
    // an event dependency — a cross-stream RAW edge.
    let a = ctx.malloc(bytes, "a")?;
    let b = ctx.malloc(bytes, "b")?;
    // `b` is allocated now but first touched much later: early allocation
    // whose inefficiency distance is measured in topological timestamps.
    ctx.memset_on(a, 0, bytes, s1)?;
    ctx.launch("produce", LaunchConfig::cover(n, 128)?, s1, move |t| {
        let i = t.global_x();
        if i < n {
            t.store_f32(a + i * 4, i as f32);
        }
    })?;
    let ready = ctx.create_event();
    ctx.record_event(ready, s1)?;
    ctx.wait_event(s2, ready)?;
    ctx.launch("consume", LaunchConfig::cover(n, 128)?, s2, move |t| {
        let i = t.global_x();
        if i < n {
            let v = t.load_f32(a + i * 4);
            t.store_f32(b + i * 4, v * 0.5);
        }
    })?;
    let mut out = vec![0.0f32; n as usize];
    ctx.d2h_f32(&mut out, b)?;
    assert_eq!(out[100], 50.0);
    ctx.sync_device();
    ctx.free(a)?;
    ctx.free(b)?;

    let report = profiler.report(&ctx);
    println!("{}", report.render_text());
    let ea = report
        .findings
        .iter()
        .find(|f| f.kind() == PatternKind::EarlyAllocation && f.object.label == "b")
        .expect("b is allocated early");
    println!("early allocation on `b`: {}", ea.suggestion);
    Ok(())
}
