//! Fault tolerance: inject failures and watch the pipeline degrade
//! gracefully instead of crashing.
//!
//! Demonstrates the two recovery layers:
//! 1. bounded shrink-and-retry at the allocation site
//!    ([`gpu_sim::RetryPolicy`] via `malloc_with_retry`), and
//! 2. the profiler still producing a full report — with per-detector
//!    status and explicit degradation records — when the workload under
//!    it dies from injected chaos.
//!
//! Run with `cargo run --example fault_tolerance`.

use drgpum::prelude::*;
use drgpum::sim::{FaultKind, FaultPlan};
use drgpum::workloads::registry::RunConfig;
use drgpum::workloads::{self, faults};

fn main() {
    // --- Layer 1: a transient OOM absorbed by the retry loop. ------------
    let mut ctx = DeviceContext::new_default();
    ctx.set_fault_plan(FaultPlan::new(7).at_api(0, FaultKind::AllocFail));
    let out = faults::resilient_pipeline(&mut ctx).expect("retry absorbs a one-shot OOM");
    println!("resilient pipeline survived: checksum {}", out.checksum);
    for f in ctx.fault_log() {
        println!("  injected: {} at api #{}", f.kind.name(), f.api_seq);
    }

    // --- Layer 2: chaos under the profiler. ------------------------------
    // Every allocation fails, so 2MM cannot finish — but the profiler must
    // still deliver a report with one status per detector family and a
    // record of what degraded.
    let spec = workloads::by_name("2MM").expect("registered");
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    ctx.set_fault_plan(FaultPlan::new(1).probabilistic(FaultKind::AllocFail, 1.0));
    let result = (spec.run)(
        &mut ctx,
        workloads::common::Variant::Unoptimized,
        &RunConfig::default(),
    );
    match result {
        Ok(out) => println!("\n2MM finished anyway: checksum {}", out.checksum),
        Err(e) => println!("\n2MM died under chaos (expected): {e}"),
    }
    let report = profiler.report(&ctx);
    println!("report degraded: {}", report.is_degraded());
    for d in &report.degradations {
        println!("  degraded [{}]: {}", d.stage, d.detail);
    }
    for det in &report.detectors {
        println!("  detector {:>12}: {:?}", det.name, det.outcome);
    }
}
