//! Profiling a deep-learning framework's caching allocator (Sec. 5.4).
//!
//! Frameworks like PyTorch pre-allocate a slab and carve tensors out of it
//! with custom APIs the GPU driver never sees. DrGPUM observes those
//! tensors through its pool-profiling interface and analyzes them as
//! first-class data objects — here catching an unused gradient buffer and
//! an activation that idles through the backward pass.
//!
//! Run with `cargo run --example dl_training`.

use drgpum::prelude::*;
use drgpum::sim::pool::CachingPool;

fn main() -> Result<(), SimError> {
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(
        &mut ctx,
        ProfilerOptions::intra_object().with_pool_tracking(),
    );

    let mut pool = CachingPool::reserve(&mut ctx, 1 << 20)?;
    profiler.observe_pool(&mut pool);

    let n = 4 * 1024u64;
    let bytes = n * 4;

    // Forward: activation produced, then sits idle through two unrelated
    // steps before the backward pass reuses it.
    let act = pool.alloc(&mut ctx, bytes, "activation")?;
    let weight = pool.alloc(&mut ctx, bytes, "weight")?;
    // Inference-only run: the gradient tensor is never touched.
    let _grad = pool.alloc(&mut ctx, bytes, "weight_grad")?;
    ctx.h2d_f32(weight, &vec![0.5f32; n as usize])?;
    ctx.launch(
        "forward",
        LaunchConfig::cover(n, 128)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < n {
                let w = t.load_f32(weight + i * 4);
                t.store_f32(act + i * 4, w * 3.0);
            }
        },
    )?;
    // Two optimizer-ish steps that do not touch the activation.
    let m1 = pool.alloc(&mut ctx, bytes, "momentum")?;
    ctx.memset(m1, 0, bytes)?;
    ctx.launch(
        "optimizer_step",
        LaunchConfig::cover(n, 128)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < n {
                let w = t.load_f32(weight + i * 4);
                let m = t.load_f32(m1 + i * 4);
                t.store_f32(m1 + i * 4, m + w);
            }
        },
    )?;
    // Backward finally consumes the activation.
    ctx.launch(
        "backward",
        LaunchConfig::cover(n, 128)?,
        StreamId::DEFAULT,
        move |t| {
            let i = t.global_x();
            if i < n {
                let a = t.load_f32(act + i * 4);
                t.store_f32(weight + i * 4, a * 0.1);
            }
        },
    )?;

    for t in [act, weight, _grad, m1] {
        pool.free(t)?;
    }
    let pool_peak = pool.stats().peak_allocated_bytes;
    pool.release(&mut ctx)?;

    let report = profiler.report(&ctx);
    println!("{}", report.render_text());
    println!("pool peak: {pool_peak} bytes");

    let grad_findings = report.findings_for("weight_grad");
    assert!(
        grad_findings
            .iter()
            .any(|f| f.kind() == PatternKind::UnusedAllocation),
        "the gradient tensor is unused in inference"
    );
    let act_findings = report.findings_for("activation");
    assert!(
        act_findings
            .iter()
            .any(|f| f.kind() == PatternKind::TemporaryIdleness),
        "the activation idles between forward and backward"
    );
    println!("dl_training: pool tensors analyzed as first-class objects");
    Ok(())
}
