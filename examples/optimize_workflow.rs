//! The find → fix → re-profile workflow the paper's evaluation follows
//! (Sec. 6: "all the inefficiencies were found and fixed by a graduate
//! student… guided by DrGPUM").
//!
//! Profiles PolyBench/2MM, applies the fixes its report suggests (the
//! workload's optimized variant), re-profiles, and shows the peak-memory
//! drop and the disappearance of the findings.
//!
//! Run with `cargo run --example optimize_workflow`.

use drgpum::prelude::*;
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::RunConfig;

fn profile(variant: Variant) -> (Report, u64) {
    let spec = drgpum::workloads::by_name("2MM").expect("registered");
    let mut ctx = DeviceContext::new_default();
    let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
    let outcome = (spec.run)(&mut ctx, variant, &RunConfig::default()).expect("runs");
    (profiler.report(&ctx), outcome.peak_bytes)
}

fn main() {
    println!("== step 1: profile the original 2MM ==\n");
    let (before, peak_before) = profile(Variant::Unoptimized);
    println!("{}", before.render_text());

    println!("== step 2: apply the suggested fixes ==\n");
    for f in &before.findings {
        println!("  fix [{:>4}] {}", f.kind().code(), f.suggestion);
    }

    println!("\n== step 3: re-profile the optimized 2MM ==\n");
    let (after, peak_after) = profile(Variant::Optimized);
    println!("{}", after.render_text());

    let reduction = 100.0 * (1.0 - peak_after as f64 / peak_before as f64);
    println!(
        "peak memory: {peak_before} -> {peak_after} bytes ({reduction:.1}% reduction; the paper reports 40%)"
    );
    assert!(before.has_pattern(PatternKind::EarlyAllocation));
    assert!(before.has_pattern(PatternKind::LateDeallocation));
    assert!(before.has_pattern(PatternKind::RedundantAllocation));
    // The headline victims are gone: D_gpu no longer exists at all (its
    // space is B's buffer), and A_gpu is freed right after its last use.
    assert!(after.findings_for("D_gpu").is_empty());
    assert!(
        !after
            .findings_for("A_gpu")
            .iter()
            .any(|f| f.kind() == PatternKind::LateDeallocation),
        "A_gpu is freed immediately after its last kernel"
    );
    assert!(
        after.findings.len() < before.findings.len(),
        "the optimized program has strictly fewer findings"
    );
    assert!(reduction > 35.0);
    println!("optimize_workflow: fixes verified by re-profiling");
}
