//! The `drgpum` command-line tool.
//!
//! ```text
//! drgpum list
//! drgpum run <workload> [--optimized] [--intra] [--platform rtx3090|a100]
//!                       [--period N] [--kernel NAME] [--estimate] [--json FILE]
//!                       [--html FILE] [--perfetto FILE] [--save-trace FILE]
//! drgpum reanalyze <trace.json> [--idleness N] [--overalloc-pct X]
//!                               [--nuaf-cov X] [--redundant-pct X] [--json FILE]
//! drgpum diff <before.json> <after.json>
//! ```
//!
//! `run` profiles one of the paper's workloads and prints the report;
//! `reanalyze` re-runs the offline analysis on a saved trace with different
//! thresholds — no program re-run required; `diff` compares two recordings
//! (e.g. before and after applying the suggested fixes) the way the
//! paper's evaluation compares unoptimized and optimized programs.

use drgpum::prelude::*;
use drgpum::profiler::{export, trace_io, SavedTrace};
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::RunConfig;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  drgpum list\n  drgpum run <workload> [--optimized] [--intra] \
         [--platform rtx3090|a100] [--period N] [--kernel NAME] [--estimate] [--json FILE] \
         [--html FILE] [--perfetto FILE] [--save-trace FILE]\n  drgpum reanalyze <trace.json> [--idleness N] \
         [--overalloc-pct X] [--nuaf-cov X] [--redundant-pct X] [--json FILE]\n  \
         drgpum diff <before.json> <after.json>"
    );
    ExitCode::from(2)
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<18} {:<10} {:<26} paper patterns",
        "name", "suite", "domain"
    );
    for spec in drgpum::workloads::all() {
        let patterns: Vec<&str> = spec.expected_patterns.iter().map(|p| p.code()).collect();
        println!(
            "{:<18} {:<10} {:<26} {}",
            spec.name,
            spec.suite,
            spec.domain,
            patterns.join(",")
        );
    }
    ExitCode::SUCCESS
}

fn cmd_run(mut args: Vec<String>) -> Result<ExitCode, String> {
    let json_out = take_value(&mut args, "--json")?;
    let perfetto_out = take_value(&mut args, "--perfetto")?;
    let trace_out = take_value(&mut args, "--save-trace")?;
    let html_out = take_value(&mut args, "--html")?;
    let platform_name = take_value(&mut args, "--platform")?.unwrap_or_else(|| "rtx3090".into());
    let period: u64 = take_value(&mut args, "--period")?
        .map(|v| {
            v.parse()
                .map_err(|_| "--period must be a number".to_owned())
        })
        .transpose()?
        .unwrap_or(1);
    let kernel_whitelist = take_value(&mut args, "--kernel")?;
    let optimized = take_flag(&mut args, "--optimized");
    let intra = take_flag(&mut args, "--intra");
    let estimate = take_flag(&mut args, "--estimate");
    let Some(name) = args.first() else {
        return Err("run: missing workload name".into());
    };
    let Some(spec) = drgpum::workloads::by_name(name) else {
        return Err(format!("unknown workload `{name}` (see `drgpum list`)"));
    };
    let platform = match platform_name.as_str() {
        "rtx3090" => PlatformConfig::rtx3090(),
        "a100" => PlatformConfig::a100(),
        other => return Err(format!("unknown platform `{other}`")),
    };

    let mut ctx = DeviceContext::new(platform);
    let mut options = if intra {
        ProfilerOptions::intra_object()
    } else {
        ProfilerOptions::object_level()
    };
    options.sampling = SamplingPolicy::with_period(period);
    if let Some(kernel) = kernel_whitelist {
        // The paper's kernel whitelist (Sec. 5.5): only this kernel is
        // fully patched for intra-object analysis.
        options.sampling = options.sampling.with_whitelist([kernel]);
    }
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let profiler = Profiler::attach(&mut ctx, options);
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
    };
    let variant = if optimized {
        Variant::Optimized
    } else {
        Variant::Unoptimized
    };
    let outcome = (spec.run)(&mut ctx, variant, &cfg).map_err(|e| e.to_string())?;
    let report = profiler.report(&ctx);
    println!("{}", report.render_text());
    println!(
        "peak memory {} bytes, simulated time {} us, checksum {:.3}",
        outcome.pool_peak_bytes.unwrap_or(outcome.peak_bytes),
        outcome.elapsed.as_ns() / 1000,
        outcome.checksum
    );

    if estimate {
        let est = profiler.estimate_savings(&ctx);
        println!(
            "advisor: applying the suggestions above would cut peak memory \
             from {} to ~{} bytes ({:.1}% reduction, upper bound)",
            est.original_peak,
            est.estimated_peak,
            est.reduction_pct()
        );
    }
    if let Some(path) = json_out {
        let v = export::report_json(&report);
        std::fs::write(&path, serde_json::to_string_pretty(&v).expect("serialize"))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("report JSON written to {path}");
    }
    if let Some(path) = perfetto_out {
        let v = profiler.perfetto_trace(&ctx);
        std::fs::write(&path, serde_json::to_string_pretty(&v).expect("serialize"))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("Perfetto trace written to {path} (open at https://ui.perfetto.dev)");
    }
    if let Some(path) = html_out {
        let collector = profiler.collector();
        let collector = collector.lock();
        let html = drgpum::profiler::html::report_html(&report, collector.usage_curve());
        std::fs::write(&path, html).map_err(|e| format!("writing {path}: {e}"))?;
        println!("HTML report written to {path}");
    }
    if let Some(path) = trace_out {
        let collector = profiler.collector();
        let collector = collector.lock();
        let saved = trace_io::save(&collector, ctx.call_stack().table(), &ctx.config().name);
        std::fs::write(&path, saved.to_text()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("raw trace written to {path} (reanalyze with `drgpum reanalyze`)");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_reanalyze(mut args: Vec<String>) -> Result<ExitCode, String> {
    let json_out = take_value(&mut args, "--json")?;
    let mut thresholds = Thresholds::default();
    if let Some(v) = take_value(&mut args, "--idleness")? {
        thresholds.idleness_min_apis = v.parse().map_err(|_| "--idleness must be a number")?;
    }
    if let Some(v) = take_value(&mut args, "--overalloc-pct")? {
        thresholds.overalloc_accessed_pct =
            v.parse().map_err(|_| "--overalloc-pct must be a number")?;
    }
    if let Some(v) = take_value(&mut args, "--nuaf-cov")? {
        thresholds.nuaf_cov_pct = v.parse().map_err(|_| "--nuaf-cov must be a number")?;
    }
    if let Some(v) = take_value(&mut args, "--redundant-pct")? {
        thresholds.redundant_size_pct =
            v.parse().map_err(|_| "--redundant-pct must be a number")?;
    }
    let Some(path) = args.first() else {
        return Err("reanalyze: missing trace file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // Strict load first; fall back to salvage so a damaged recording still
    // yields a (clearly marked) partial report instead of nothing.
    let report = match trace_io::load(&text) {
        Ok(saved) => {
            println!(
                "loaded trace: {} GPU APIs, {} objects, platform {}",
                saved.api_count(),
                saved.object_count(),
                saved.platform
            );
            saved.reanalyze(&thresholds)
        }
        Err(e) => {
            eprintln!("warning: {path} is damaged ({e}); salvaging what remains");
            let (saved, losses) = trace_io::salvage(&text);
            println!(
                "salvaged trace: {} GPU APIs, {} objects, platform {}",
                saved.api_count(),
                saved.object_count(),
                saved.platform
            );
            saved.reanalyze_with(&thresholds, losses.to_degradations())
        }
    };
    println!("{}", report.render_text());
    if let Some(out) = json_out {
        let v = export::report_json(&report);
        std::fs::write(&out, serde_json::to_string_pretty(&v).expect("serialize"))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("report JSON written to {out}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: Vec<String>) -> Result<ExitCode, String> {
    let [before_path, after_path] = args.as_slice() else {
        return Err("diff: expected exactly two trace files".into());
    };
    let load = |path: &String| -> Result<(SavedTrace, Report), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let saved = trace_io::load(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let report = saved.reanalyze(&Thresholds::default());
        Ok((saved, report))
    };
    let (_, before) = load(before_path)?;
    let (_, after) = load(after_path)?;

    let reduction = if before.stats.peak_bytes > 0 {
        100.0 * (1.0 - after.stats.peak_bytes as f64 / before.stats.peak_bytes as f64)
    } else {
        0.0
    };
    println!(
        "peak memory: {} -> {} bytes ({:+.1}% change)",
        before.stats.peak_bytes, after.stats.peak_bytes, -reduction
    );
    println!(
        "leaked objects: {} -> {}",
        before.stats.leaked_objects, after.stats.leaked_objects
    );
    println!(
        "findings: {} -> {}",
        before.findings.len(),
        after.findings.len()
    );

    // Per-pattern resolution.
    let count = |report: &Report, kind| report.findings.iter().filter(|f| f.kind() == kind).count();
    println!(
        "
{:<32} {:>7} {:>7}",
        "pattern", "before", "after"
    );
    let mut kinds: Vec<PatternKind> = before
        .patterns_present()
        .union(&after.patterns_present())
        .copied()
        .collect();
    kinds.sort();
    for kind in kinds {
        let (b, a) = (count(&before, kind), count(&after, kind));
        let mark = if a < b { "  fixed" } else { "" };
        println!("{:<32} {:>7} {:>7}{}", kind.name(), b, a, mark);
    }

    // Findings that disappeared / appeared, by object label.
    let labels = |r: &Report| -> std::collections::BTreeSet<(String, &'static str)> {
        r.findings
            .iter()
            .map(|f| (f.object.label.clone(), f.kind().code()))
            .collect()
    };
    let (lb, la) = (labels(&before), labels(&after));
    for (label, code) in lb.difference(&la) {
        println!("resolved: [{code}] {label}");
    }
    for (label, code) in la.difference(&lb) {
        println!("NEW:      [{code}] {label}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "list" => Ok(cmd_list()),
        "run" => cmd_run(args),
        "reanalyze" => cmd_reanalyze(args),
        "diff" => cmd_diff(args),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
