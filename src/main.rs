//! The `drgpum` command-line tool.
//!
//! ```text
//! drgpum list
//! drgpum run <workload> [--optimized] [--intra] [--platform rtx3090|a100]
//!                       [--period N] [--kernel NAME] [--estimate] [--json FILE]
//!                       [--html FILE] [--perfetto FILE] [--save-trace FILE]
//!                       [--mem-budget SIZE] [--deadline MS]
//!                       [--stream-trace FILE] [--strict]
//! drgpum run --resume <trace> [--json FILE] [--strict]
//! drgpum reanalyze <trace.json> [--idleness N] [--overalloc-pct X]
//!                               [--nuaf-cov X] [--redundant-pct X] [--json FILE]
//!                               [--strict]
//! drgpum diff <before.json> <after.json>
//! ```
//!
//! `run` profiles one of the paper's workloads and prints the report;
//! `reanalyze` re-runs the offline analysis on a saved trace with different
//! thresholds — no program re-run required; `diff` compares two recordings
//! (e.g. before and after applying the suggested fixes) the way the
//! paper's evaluation compares unoptimized and optimized programs.
//!
//! # Exit codes
//!
//! * `0` — clean run, full-fidelity report;
//! * `1` — error (or, under `--strict`, a degraded/salvaged report);
//! * `2` — usage error;
//! * `3` — the report is degraded (budget demotions, timed-out detectors)
//!   or was recovered by salvage. CI pipelines can gate on `0` only.

use drgpum::prelude::*;
use drgpum::profiler::governor::parse_byte_size;
use drgpum::profiler::{export, trace_io, ResourceBudget, SavedTrace};
use drgpum::workloads::common::Variant;
use drgpum::workloads::registry::RunConfig;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  drgpum list\n  drgpum run <workload> [--optimized] [--intra] \
         [--platform rtx3090|a100] [--period N] [--kernel NAME] [--estimate] [--json FILE] \
         [--html FILE] [--perfetto FILE] [--save-trace FILE] [--mem-budget SIZE] \
         [--deadline MS] [--stream-trace FILE] [--strict]\n  \
         drgpum run --resume <trace> [--json FILE] [--strict]\n  \
         drgpum reanalyze <trace.json> [--idleness N] \
         [--overalloc-pct X] [--nuaf-cov X] [--redundant-pct X] [--json FILE] [--strict]\n  \
         drgpum diff <before.json> <after.json>\n\n\
         exit codes: 0 clean, 1 error (or --strict escalation), 2 usage, \
         3 degraded/salvaged report"
    );
    ExitCode::from(2)
}

/// Removes `--flag value` or `--flag=value` from `args`, returning the value.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let prefix = format!("{flag}=");
    if let Some(pos) = args
        .iter()
        .position(|a| a == flag || a.starts_with(&prefix))
    {
        if args[pos] != flag {
            // `--flag=value` in one token.
            let value = args.remove(pos).split_off(prefix.len());
            if value.is_empty() {
                return Err(format!("{flag} requires a value"));
            }
            return Ok(Some(value));
        }
        if pos + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Maps a run/reanalysis outcome to the process exit code: `0` for a clean,
/// full-fidelity report, `3` when it is degraded or salvaged, escalated to
/// `1` under `--strict`.
fn outcome_code(degraded: bool, strict: bool) -> ExitCode {
    if !degraded {
        ExitCode::SUCCESS
    } else if strict {
        eprintln!("error: report is degraded or salvaged and --strict was given");
        ExitCode::FAILURE
    } else {
        ExitCode::from(3)
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<18} {:<10} {:<26} paper patterns",
        "name", "suite", "domain"
    );
    for spec in drgpum::workloads::all() {
        let patterns: Vec<&str> = spec.expected_patterns.iter().map(|p| p.code()).collect();
        println!(
            "{:<18} {:<10} {:<26} {}",
            spec.name,
            spec.suite,
            spec.domain,
            patterns.join(",")
        );
    }
    ExitCode::SUCCESS
}

fn cmd_run(mut args: Vec<String>) -> Result<ExitCode, String> {
    let json_out = take_value(&mut args, "--json")?;
    let perfetto_out = take_value(&mut args, "--perfetto")?;
    let trace_out = take_value(&mut args, "--save-trace")?;
    let html_out = take_value(&mut args, "--html")?;
    let mem_budget = take_value(&mut args, "--mem-budget")?;
    let deadline_ms: Option<u64> = take_value(&mut args, "--deadline")?
        .map(|v| {
            v.parse()
                .map_err(|_| "--deadline must be a number of milliseconds".to_owned())
        })
        .transpose()?;
    let stream_trace = take_value(&mut args, "--stream-trace")?;
    let resume = take_value(&mut args, "--resume")?;
    let strict = take_flag(&mut args, "--strict");
    let platform_name = take_value(&mut args, "--platform")?.unwrap_or_else(|| "rtx3090".into());
    let period: u64 = take_value(&mut args, "--period")?
        .map(|v| {
            v.parse()
                .map_err(|_| "--period must be a number".to_owned())
        })
        .transpose()?
        .unwrap_or(1);
    let kernel_whitelist = take_value(&mut args, "--kernel")?;
    let optimized = take_flag(&mut args, "--optimized");
    let intra = take_flag(&mut args, "--intra");
    let estimate = take_flag(&mut args, "--estimate");
    if let Some(trace_path) = resume {
        return cmd_resume(&trace_path, json_out, strict);
    }
    let Some(name) = args.first() else {
        return Err("run: missing workload name".into());
    };
    let Some(spec) = drgpum::workloads::by_name(name) else {
        return Err(format!("unknown workload `{name}` (see `drgpum list`)"));
    };
    let platform = match platform_name.as_str() {
        "rtx3090" => PlatformConfig::rtx3090(),
        "a100" => PlatformConfig::a100(),
        other => return Err(format!("unknown platform `{other}`")),
    };

    let mut ctx = DeviceContext::new(platform);
    let mut options = if intra {
        ProfilerOptions::intra_object()
    } else {
        ProfilerOptions::object_level()
    };
    options.sampling = SamplingPolicy::with_period(period);
    if let Some(kernel) = kernel_whitelist {
        // The paper's kernel whitelist (Sec. 5.5): only this kernel is
        // fully patched for intra-object analysis.
        options.sampling = options.sampling.with_whitelist([kernel]);
    }
    if let Some(elem) = spec.elem_size_hint {
        options.elem_size = elem;
    }
    if spec.uses_pool {
        options.track_pool_tensors = true;
    }
    let mut budget = ResourceBudget::unlimited();
    if let Some(size) = mem_budget {
        budget = budget.with_resident_bytes(parse_byte_size(&size)?);
    }
    if let Some(ms) = deadline_ms {
        // One wall-clock deadline governs both watchdogs: each offline
        // detector and each kernel's block loop.
        budget = budget
            .with_detector_deadline_ms(ms)
            .with_kernel_deadline_ms(ms);
        ctx.set_kernel_deadline_ms(Some(ms));
    }
    options.budget = budget;
    let profiler = match &stream_trace {
        Some(path) => {
            Profiler::attach_streaming(&mut ctx, options, path).map_err(|e| e.to_string())?
        }
        None => Profiler::attach(&mut ctx, options),
    };
    let cfg = RunConfig {
        pool_observer: spec
            .uses_pool
            .then(|| profiler.collector() as drgpum::sim::pool::SharedPoolObserver),
    };
    let variant = if optimized {
        Variant::Optimized
    } else {
        Variant::Unoptimized
    };
    let outcome = (spec.run)(&mut ctx, variant, &cfg).map_err(|e| e.to_string())?;
    let mut stream_failed = false;
    if stream_trace.is_some() {
        if let Err(e) = profiler.finish_stream() {
            eprintln!("warning: {e}; the trace keeps everything up to the last fsync");
            stream_failed = true;
        }
    }
    let report = profiler.report(&ctx);
    println!("{}", report.render_text());
    println!(
        "peak memory {} bytes, simulated time {} us, checksum {:.3}",
        outcome.pool_peak_bytes.unwrap_or(outcome.peak_bytes),
        outcome.elapsed.as_ns() / 1000,
        outcome.checksum
    );

    if estimate {
        let est = profiler.estimate_savings(&ctx);
        println!(
            "advisor: applying the suggestions above would cut peak memory \
             from {} to ~{} bytes ({:.1}% reduction, upper bound)",
            est.original_peak,
            est.estimated_peak,
            est.reduction_pct()
        );
    }
    if let Some(path) = json_out {
        let v = export::report_json(&report);
        std::fs::write(&path, serde_json::to_string_pretty(&v).expect("serialize"))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("report JSON written to {path}");
    }
    if let Some(path) = perfetto_out {
        let v = profiler.perfetto_trace(&ctx);
        std::fs::write(&path, serde_json::to_string_pretty(&v).expect("serialize"))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("Perfetto trace written to {path} (open at https://ui.perfetto.dev)");
    }
    if let Some(path) = html_out {
        let collector = profiler.collector();
        let collector = collector.lock();
        let html = drgpum::profiler::html::report_html(&report, collector.usage_curve());
        std::fs::write(&path, html).map_err(|e| format!("writing {path}: {e}"))?;
        println!("HTML report written to {path}");
    }
    if let Some(path) = trace_out {
        let collector = profiler.collector();
        let collector = collector.lock();
        let saved = trace_io::save(&collector, ctx.call_stack().table(), &ctx.config().name);
        std::fs::write(&path, saved.to_text()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("raw trace written to {path} (reanalyze with `drgpum reanalyze`)");
    }
    if let Some(path) = stream_trace {
        println!("streaming trace written to {path} (recover with `drgpum run --resume`)");
    }
    Ok(outcome_code(report.is_degraded() || stream_failed, strict))
}

/// `drgpum run --resume <trace>`: salvages a (possibly crash-truncated)
/// streaming or batch trace and re-runs the offline analysis on the
/// recovered prefix — the recovery half of `--stream-trace`.
fn cmd_resume(path: &str, json_out: Option<String>, strict: bool) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (saved, losses) = trace_io::salvage(&text);
    let lossless = losses.is_lossless();
    println!(
        "resumed trace: {} GPU APIs, {} objects, platform {}{}",
        saved.api_count(),
        saved.object_count(),
        saved.platform,
        if lossless {
            " (clean finish)"
        } else {
            " (recovered prefix)"
        }
    );
    let report = saved.reanalyze_with(&Thresholds::default(), losses.to_degradations());
    println!("{}", report.render_text());
    if let Some(out) = json_out {
        let v = export::report_json(&report);
        std::fs::write(&out, serde_json::to_string_pretty(&v).expect("serialize"))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("report JSON written to {out}");
    }
    Ok(outcome_code(report.is_degraded(), strict))
}

fn cmd_reanalyze(mut args: Vec<String>) -> Result<ExitCode, String> {
    let json_out = take_value(&mut args, "--json")?;
    let strict = take_flag(&mut args, "--strict");
    let mut thresholds = Thresholds::default();
    if let Some(v) = take_value(&mut args, "--idleness")? {
        thresholds.idleness_min_apis = v.parse().map_err(|_| "--idleness must be a number")?;
    }
    if let Some(v) = take_value(&mut args, "--overalloc-pct")? {
        thresholds.overalloc_accessed_pct =
            v.parse().map_err(|_| "--overalloc-pct must be a number")?;
    }
    if let Some(v) = take_value(&mut args, "--nuaf-cov")? {
        thresholds.nuaf_cov_pct = v.parse().map_err(|_| "--nuaf-cov must be a number")?;
    }
    if let Some(v) = take_value(&mut args, "--redundant-pct")? {
        thresholds.redundant_size_pct =
            v.parse().map_err(|_| "--redundant-pct must be a number")?;
    }
    let Some(path) = args.first() else {
        return Err("reanalyze: missing trace file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // Strict load first; fall back to salvage so a damaged recording still
    // yields a (clearly marked) partial report instead of nothing.
    let report = match trace_io::load(&text) {
        Ok(saved) => {
            println!(
                "loaded trace: {} GPU APIs, {} objects, platform {}",
                saved.api_count(),
                saved.object_count(),
                saved.platform
            );
            saved.reanalyze(&thresholds)
        }
        Err(e) => {
            eprintln!("warning: {path} is damaged ({e}); salvaging what remains");
            let (saved, losses) = trace_io::salvage(&text);
            println!(
                "salvaged trace: {} GPU APIs, {} objects, platform {}",
                saved.api_count(),
                saved.object_count(),
                saved.platform
            );
            saved.reanalyze_with(&thresholds, losses.to_degradations())
        }
    };
    println!("{}", report.render_text());
    if let Some(out) = json_out {
        let v = export::report_json(&report);
        std::fs::write(&out, serde_json::to_string_pretty(&v).expect("serialize"))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("report JSON written to {out}");
    }
    Ok(outcome_code(report.is_degraded(), strict))
}

fn cmd_diff(args: Vec<String>) -> Result<ExitCode, String> {
    let [before_path, after_path] = args.as_slice() else {
        return Err("diff: expected exactly two trace files".into());
    };
    let load = |path: &String| -> Result<(SavedTrace, Report), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let saved = trace_io::load(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let report = saved.reanalyze(&Thresholds::default());
        Ok((saved, report))
    };
    let (_, before) = load(before_path)?;
    let (_, after) = load(after_path)?;

    let reduction = if before.stats.peak_bytes > 0 {
        100.0 * (1.0 - after.stats.peak_bytes as f64 / before.stats.peak_bytes as f64)
    } else {
        0.0
    };
    println!(
        "peak memory: {} -> {} bytes ({:+.1}% change)",
        before.stats.peak_bytes, after.stats.peak_bytes, -reduction
    );
    println!(
        "leaked objects: {} -> {}",
        before.stats.leaked_objects, after.stats.leaked_objects
    );
    println!(
        "findings: {} -> {}",
        before.findings.len(),
        after.findings.len()
    );

    // Per-pattern resolution.
    let count = |report: &Report, kind| report.findings.iter().filter(|f| f.kind() == kind).count();
    println!(
        "
{:<32} {:>7} {:>7}",
        "pattern", "before", "after"
    );
    let mut kinds: Vec<PatternKind> = before
        .patterns_present()
        .union(&after.patterns_present())
        .copied()
        .collect();
    kinds.sort();
    for kind in kinds {
        let (b, a) = (count(&before, kind), count(&after, kind));
        let mark = if a < b { "  fixed" } else { "" };
        println!("{:<32} {:>7} {:>7}{}", kind.name(), b, a, mark);
    }

    // Findings that disappeared / appeared, by object label.
    let labels = |r: &Report| -> std::collections::BTreeSet<(String, &'static str)> {
        r.findings
            .iter()
            .map(|f| (f.object.label.clone(), f.kind().code()))
            .collect()
    };
    let (lb, la) = (labels(&before), labels(&after));
    for (label, code) in lb.difference(&la) {
        println!("resolved: [{code}] {label}");
    }
    for (label, code) in la.difference(&lb) {
        println!("NEW:      [{code}] {label}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "list" => Ok(cmd_list()),
        "run" => cmd_run(args),
        "reanalyze" => cmd_reanalyze(args),
        "diff" => cmd_diff(args),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| (*w).to_owned()).collect()
    }

    #[test]
    fn take_value_space_separated() {
        let mut args = argv(&["--json", "out.json", "workload"]);
        assert_eq!(
            take_value(&mut args, "--json").unwrap().as_deref(),
            Some("out.json")
        );
        assert_eq!(args, argv(&["workload"]));
    }

    #[test]
    fn take_value_equals_form() {
        let mut args = argv(&["--json=out.json", "workload"]);
        assert_eq!(
            take_value(&mut args, "--json").unwrap().as_deref(),
            Some("out.json")
        );
        assert_eq!(args, argv(&["workload"]));
    }

    #[test]
    fn take_value_equals_form_keeps_later_equals_signs() {
        let mut args = argv(&["--kernel=vec=add"]);
        assert_eq!(
            take_value(&mut args, "--kernel").unwrap().as_deref(),
            Some("vec=add")
        );
        assert!(args.is_empty());
    }

    #[test]
    fn take_value_absent_flag() {
        let mut args = argv(&["workload"]);
        assert_eq!(take_value(&mut args, "--json").unwrap(), None);
        assert_eq!(args, argv(&["workload"]));
    }

    #[test]
    fn take_value_missing_value_is_an_error() {
        let mut args = argv(&["--json"]);
        assert!(take_value(&mut args, "--json").is_err());
        let mut args = argv(&["--json="]);
        assert!(take_value(&mut args, "--json").is_err());
    }

    #[test]
    fn take_value_does_not_match_prefix_flags() {
        // `--jsonx` must not be mistaken for `--json`.
        let mut args = argv(&["--jsonx", "v"]);
        assert_eq!(take_value(&mut args, "--json").unwrap(), None);
        assert_eq!(args, argv(&["--jsonx", "v"]));
    }

    #[test]
    fn outcome_code_policy() {
        // `ExitCode` has no `PartialEq`; compare via its `Debug` form.
        let code = |degraded, strict| format!("{:?}", outcome_code(degraded, strict));
        assert_eq!(code(false, false), format!("{:?}", ExitCode::SUCCESS));
        assert_eq!(code(false, true), format!("{:?}", ExitCode::SUCCESS));
        assert_eq!(code(true, false), format!("{:?}", ExitCode::from(3)));
        assert_eq!(code(true, true), format!("{:?}", ExitCode::FAILURE));
    }
}
