//! # DrGPUM (Rust reproduction)
//!
//! An object-centric GPU memory profiler — a full reproduction of
//! *DrGPUM: Guiding Memory Optimization for GPU-Accelerated Applications*
//! (ASPLOS 2023) — together with the simulated CUDA-like runtime it runs
//! on, the paper's benchmark suite, and the baseline tools it compares
//! against.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sim`] — the GPU runtime simulator (`gpu-sim`): device memory,
//!   streams, kernels, and the Sanitizer-style instrumentation API;
//! * [`profiler`] — the profiler itself (`drgpum-core`): object-level and
//!   intra-object analyses, the ten inefficiency patterns, reports, and
//!   the Perfetto GUI export;
//! * [`workloads`] — the paper's twelve benchmark programs
//!   (`drgpum-workloads`), each in unoptimized and optimized variants;
//! * [`baselines`] — ValueExpert-lite and memcheck-lite
//!   (`drgpum-baselines`) for the Table 5 comparison.
//!
//! # Quick start
//!
//! ```
//! use drgpum::prelude::*;
//!
//! # fn main() -> Result<(), gpu_sim::SimError> {
//! let mut ctx = DeviceContext::new_default();
//! let profiler = Profiler::attach(&mut ctx, ProfilerOptions::object_level());
//!
//! let buf = ctx.malloc(4096, "my_buffer")?;
//! ctx.memset(buf, 0, 4096)?;
//! // …never freed: DrGPUM reports the leak.
//!
//! let report = profiler.report(&ctx);
//! assert!(report.has_pattern(PatternKind::MemoryLeak));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `drgpum-bench` binaries for the paper's tables and figures.

#![warn(missing_docs)]

pub use drgpum_baselines as baselines;
pub use drgpum_core as profiler;
pub use drgpum_workloads as workloads;
pub use gpu_sim as sim;

/// The most common imports, in one place.
pub mod prelude {
    pub use drgpum_core::{
        AnalysisLevel, PatternKind, Profiler, ProfilerOptions, Report, SamplingPolicy, Thresholds,
    };
    pub use gpu_sim::{
        DeviceContext, DevicePtr, LaunchConfig, PlatformConfig, SimConfig, SimError, SourceLoc,
        StreamId,
    };
}
